/**
 * @file
 * Tests of the parallel sweep engine: bit-identical determinism across
 * thread counts, submission-order preservation, seed derivation, error
 * propagation/cancellation and the thread-budget precedence (explicit
 * request > PEARL_THREADS > deprecated PEARL_SWEEP_THREADS > hardware).
 */

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "metrics/sweep.hpp"
#include "traffic/suite.hpp"

namespace pearl {
namespace metrics {
namespace {

/** Clears every thread-budget knob for the test and restores them
 *  after, so precedence assertions are immune to the caller's
 *  environment (check.sh flavours export PEARL_THREADS). */
class SweepTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        for (std::size_t i = 0; i < kKnobs.size(); ++i) {
            if (const char *v = std::getenv(kKnobs[i]))
                saved_[i] = v;
            unsetenv(kKnobs[i]);
        }
    }

    void
    TearDown() override
    {
        for (std::size_t i = 0; i < kKnobs.size(); ++i) {
            if (saved_[i])
                setenv(kKnobs[i], saved_[i]->c_str(), 1);
            else
                unsetenv(kKnobs[i]);
        }
    }

  private:
    static constexpr std::array<const char *, 3> kKnobs = {
        "PEARL_THREADS", "PEARL_SWEEP_THREADS", "PEARL_STEP_THREADS"};
    std::array<std::optional<std::string>, 3> saved_;
};

#define EXPECT_SAME_BITS(a, b, what)                                    \
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a),                          \
              std::bit_cast<std::uint64_t>(b))                          \
        << what << " differs: " << (a) << " vs " << (b)

/** Every RunMetrics field, bit-for-bit. */
void
expectBitIdentical(const RunMetrics &a, const RunMetrics &b)
{
    EXPECT_EQ(a.configName, b.configName);
    EXPECT_EQ(a.pairLabel, b.pairLabel);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.deliveredPackets, b.deliveredPackets);
    EXPECT_EQ(a.deliveredFlits, b.deliveredFlits);
    EXPECT_EQ(a.deliveredBits, b.deliveredBits);
    EXPECT_EQ(a.cpuPackets, b.cpuPackets);
    EXPECT_EQ(a.gpuPackets, b.gpuPackets);
    EXPECT_SAME_BITS(a.throughputFlitsPerCycle,
                     b.throughputFlitsPerCycle, "throughput");
    EXPECT_SAME_BITS(a.throughputGbps, b.throughputGbps, "Gbps");
    EXPECT_SAME_BITS(a.avgLatencyCycles, b.avgLatencyCycles, "latency");
    EXPECT_SAME_BITS(a.cpuLatencyCycles, b.cpuLatencyCycles,
                     "CPU latency");
    EXPECT_SAME_BITS(a.gpuLatencyCycles, b.gpuLatencyCycles,
                     "GPU latency");
    EXPECT_SAME_BITS(a.totalEnergyJ, b.totalEnergyJ, "energy");
    EXPECT_SAME_BITS(a.energyPerBitPj, b.energyPerBitPj, "energy/bit");
    EXPECT_SAME_BITS(a.laserPowerW, b.laserPowerW, "laser power");
    EXPECT_EQ(a.corruptedPackets, b.corruptedPackets);
    EXPECT_EQ(a.reservationDrops, b.reservationDrops);
    EXPECT_EQ(a.retransmittedPackets, b.retransmittedPackets);
    EXPECT_EQ(a.ackTimeouts, b.ackTimeouts);
    EXPECT_EQ(a.droppedPackets, b.droppedPackets);
    EXPECT_EQ(a.thermalUnlockedCycles, b.thermalUnlockedCycles);
    for (std::size_t s = 0; s < a.residency.size(); ++s) {
        EXPECT_SAME_BITS(a.residency[s], b.residency[s],
                         "residency[" + std::to_string(s) + "]");
    }
}

core::PearlConfig
faultyConfig()
{
    core::PearlConfig cfg;
    cfg.faults.enabled = true;
    cfg.faults.seed = 0xFA017;
    cfg.faults.baseBer = 5e-4;
    cfg.faults.reservationDropRate = 2e-2;
    cfg.faults.bankMtbfCycles = 10000.0;
    cfg.faults.bankMttrCycles = 5000.0;
    return cfg;
}

/** The 8-job determinism grid: two pairs x {reactive, static} x
 *  {healthy, faulty} PEARL plus two CMESH baselines — together they
 *  exercise residency arrays, fault counters and both fabrics. */
std::vector<RunSpec>
determinismJobs(const traffic::BenchmarkSuite &suite)
{
    RunOptions opts;
    opts.warmupCycles = 300;
    opts.measureCycles = 1200;

    const traffic::BenchmarkPair pairs[2] = {
        {suite.find("Rad"), suite.find("QRS")},
        {suite.find("FA"), suite.find("Reduc")},
    };

    std::vector<RunSpec> jobs;
    for (int j = 0; j < 8; ++j) {
        RunSpec job;
        job.configName = "job" + std::to_string(j);
        job.pair = pairs[j % 2];
        job.options = opts;
        if (j >= 6) {
            job.fabric = RunSpec::Fabric::Cmesh;
        } else {
            if (j >= 3)
                job.pearl = faultyConfig();
            if (j % 2 == 0) {
                job.makePolicy = [] {
                    return std::make_unique<core::ReactivePolicy>();
                };
            } else {
                job.makePolicy = [] {
                    return std::make_unique<core::StaticPolicy>(
                        photonic::WlState::WL64);
                };
            }
        }
        jobs.push_back(std::move(job));
    }
    return jobs;
}

SweepResult
runWithThreads(const std::vector<RunSpec> &jobs, unsigned threads)
{
    SweepOptions so;
    so.threads = threads;
    so.baseSeed = 12345;
    return SweepRunner(so).run(jobs);
}

TEST_F(SweepTest, BitIdenticalAcrossThreadCounts)
{
    traffic::BenchmarkSuite suite;
    const auto jobs = determinismJobs(suite);

    const SweepResult serial = runWithThreads(jobs, 1);
    ASSERT_TRUE(serial.allOk());
    EXPECT_EQ(serial.summary.threads, 1u);

    // The faulty jobs must exercise the resilience counters, otherwise
    // "fault counters are bit-identical" would be vacuous.
    std::uint64_t recovery_events = 0;
    for (const auto &j : serial.jobs) {
        recovery_events += j.metrics.retransmittedPackets +
                           j.metrics.reservationDrops +
                           j.metrics.corruptedPackets;
    }
    EXPECT_GT(recovery_events, 0u);

    for (unsigned threads : {2u, 8u}) {
        const SweepResult parallel = runWithThreads(jobs, threads);
        ASSERT_TRUE(parallel.allOk());
        ASSERT_EQ(parallel.jobs.size(), serial.jobs.size());
        for (std::size_t i = 0; i < serial.jobs.size(); ++i) {
            SCOPED_TRACE("job " + std::to_string(i) + " at " +
                         std::to_string(threads) + " threads");
            EXPECT_EQ(parallel.jobs[i].seed, serial.jobs[i].seed);
            expectBitIdentical(parallel.jobs[i].metrics,
                               serial.jobs[i].metrics);
        }
    }
}

TEST_F(SweepTest, SubmissionOrderPreserved)
{
    // Custom jobs with staggered labels: results must come back in
    // submission order regardless of completion order.
    std::vector<RunSpec> jobs;
    for (int i = 0; i < 16; ++i) {
        RunSpec job;
        job.configName = "cfg" + std::to_string(i);
        job.label = "label" + std::to_string(i);
        job.custom = [i](const RunSpec &j, std::uint64_t) {
            RunMetrics m;
            m.configName = j.configName;
            m.pairLabel = j.label;
            m.deliveredPackets = static_cast<std::uint64_t>(i);
            return m;
        };
        jobs.push_back(std::move(job));
    }
    SweepOptions so;
    so.threads = 8;
    const SweepResult result = SweepRunner(so).run(jobs);
    ASSERT_TRUE(result.allOk());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(result.jobs[i].metrics.configName,
                  "cfg" + std::to_string(i));
        EXPECT_EQ(result.jobs[i].metrics.pairLabel,
                  "label" + std::to_string(i));
        EXPECT_EQ(result.jobs[i].metrics.deliveredPackets, i);
    }
}

TEST_F(SweepTest, SeedsDeriveFromBaseAndIndex)
{
    std::vector<RunSpec> jobs;
    for (int i = 0; i < 4; ++i) {
        RunSpec job;
        job.custom = [](const RunSpec &, std::uint64_t) {
            return RunMetrics{};
        };
        if (i == 2)
            job.explicitSeed = 777;
        jobs.push_back(std::move(job));
    }
    SweepOptions so;
    so.threads = 2;
    so.baseSeed = 42;
    const SweepResult result = SweepRunner(so).run(jobs);
    ASSERT_TRUE(result.allOk());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (i == 2)
            EXPECT_EQ(result.jobs[i].seed, 777u);
        else
            EXPECT_EQ(result.jobs[i].seed, deriveSeed(42, i));
    }
    // Decorrelated streams: no two derived seeds collide.
    EXPECT_NE(result.jobs[0].seed, result.jobs[1].seed);
    EXPECT_NE(result.jobs[1].seed, result.jobs[3].seed);
}

TEST_F(SweepTest, ErrorPropagates)
{
    std::vector<RunSpec> jobs;
    for (int i = 0; i < 6; ++i) {
        RunSpec job;
        job.configName = "e" + std::to_string(i);
        job.custom = [i](const RunSpec &, std::uint64_t) {
            if (i == 3)
                throw std::runtime_error("boom in job 3");
            return RunMetrics{};
        };
        jobs.push_back(std::move(job));
    }
    SweepOptions so;
    so.threads = 4;
    const SweepResult result = SweepRunner(so).run(jobs);
    EXPECT_FALSE(result.allOk());
    ASSERT_NE(result.firstError(), nullptr);
    EXPECT_EQ(result.firstError(), &result.jobs[3]);
    EXPECT_FALSE(result.jobs[3].ok);
    EXPECT_NE(result.jobs[3].error.find("boom"), std::string::npos);
    EXPECT_EQ(result.summary.failed, 1u);
    EXPECT_THROW(result.metricsOrThrow(), std::runtime_error);
}

TEST_F(SweepTest, SerialCancelSkipsRemaining)
{
    std::vector<RunSpec> jobs;
    for (int i = 0; i < 5; ++i) {
        RunSpec job;
        job.custom = [i](const RunSpec &, std::uint64_t) {
            if (i == 1)
                throw std::runtime_error("fail fast");
            return RunMetrics{};
        };
        jobs.push_back(std::move(job));
    }
    SweepOptions so;
    so.threads = 1; // serial: cancellation order is deterministic
    const SweepResult result = SweepRunner(so).run(jobs);
    EXPECT_TRUE(result.jobs[0].ok);
    EXPECT_FALSE(result.jobs[1].ok);
    EXPECT_FALSE(result.jobs[1].skipped);
    for (std::size_t i = 2; i < jobs.size(); ++i) {
        EXPECT_FALSE(result.jobs[i].ok);
        EXPECT_TRUE(result.jobs[i].skipped);
    }
    EXPECT_EQ(result.summary.failed, 1u);
    EXPECT_EQ(result.summary.skipped, 3u);
}

TEST_F(SweepTest, CancelOnErrorOffRunsEverything)
{
    std::vector<RunSpec> jobs;
    for (int i = 0; i < 4; ++i) {
        RunSpec job;
        job.custom = [i](const RunSpec &, std::uint64_t) {
            if (i == 0)
                throw std::runtime_error("only job 0 fails");
            return RunMetrics{};
        };
        jobs.push_back(std::move(job));
    }
    SweepOptions so;
    so.threads = 1;
    so.cancelOnError = false;
    const SweepResult result = SweepRunner(so).run(jobs);
    EXPECT_FALSE(result.jobs[0].ok);
    for (std::size_t i = 1; i < jobs.size(); ++i)
        EXPECT_TRUE(result.jobs[i].ok);
    EXPECT_EQ(result.summary.skipped, 0u);
}

TEST_F(SweepTest, EnvForcesSerialAndMatchesSerialRun)
{
    traffic::BenchmarkSuite suite;
    const auto jobs = determinismJobs(suite);

    const SweepResult serial = runWithThreads(jobs, 1);
    ASSERT_TRUE(serial.allOk());

    // An explicit request now beats the env knobs, so force serial via
    // the environment with the request left at "resolve for me" (0).
    setenv("PEARL_SWEEP_THREADS", "1", 1);
    const SweepResult forced = runWithThreads(jobs, 0);
    ASSERT_TRUE(forced.allOk());
    EXPECT_EQ(forced.summary.threads, 1u);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        SCOPED_TRACE("job " + std::to_string(i));
        expectBitIdentical(forced.jobs[i].metrics,
                           serial.jobs[i].metrics);
    }
}

TEST_F(SweepTest, ResolveThreadsPrecedence)
{
    // Fixture cleared all three knobs: explicit request wins, and an
    // unconstrained request falls back to the hardware count (>= 1).
    EXPECT_EQ(SweepRunner::resolveThreads(4), 4u);
    EXPECT_GE(SweepRunner::resolveThreads(0), 1u);

    // An explicit nonzero request beats every env knob.
    setenv("PEARL_THREADS", "3", 1);
    setenv("PEARL_SWEEP_THREADS", "5", 1);
    EXPECT_EQ(SweepRunner::resolveThreads(4), 4u);

    // PEARL_THREADS beats the deprecated sweep knob...
    EXPECT_EQ(SweepRunner::resolveThreads(0), 3u);

    // ...which only applies while PEARL_THREADS is unset.
    unsetenv("PEARL_THREADS");
    EXPECT_EQ(SweepRunner::resolveThreads(0), 5u);

    // Legacy zero means "unset" and garbage is ignored with a warning;
    // both fall through to the hardware fallback / explicit request.
    setenv("PEARL_SWEEP_THREADS", "0", 1);
    EXPECT_GE(SweepRunner::resolveThreads(0), 1u);
    EXPECT_EQ(SweepRunner::resolveThreads(4), 4u);
    setenv("PEARL_SWEEP_THREADS", "abc", 1);
    EXPECT_GE(SweepRunner::resolveThreads(0), 1u);
    EXPECT_EQ(SweepRunner::resolveThreads(4), 4u);
}

TEST_F(SweepTest, EmptySweepIsANoop)
{
    const SweepResult result = SweepRunner().run({});
    EXPECT_TRUE(result.allOk());
    EXPECT_EQ(result.jobs.size(), 0u);
    EXPECT_EQ(result.summary.jobs, 0u);
}

TEST_F(SweepTest, SummaryCapturesPerJobWallTime)
{
    traffic::BenchmarkSuite suite;
    auto jobs = determinismJobs(suite);
    jobs.resize(2);
    const SweepResult result = runWithThreads(jobs, 2);
    ASSERT_TRUE(result.allOk());
    EXPECT_EQ(result.summary.jobs, 2u);
    double aggregate = 0.0;
    for (const auto &j : result.jobs) {
        EXPECT_GT(j.wallSeconds, 0.0);
        aggregate += j.wallSeconds;
    }
    EXPECT_DOUBLE_EQ(result.summary.aggregateJobSeconds, aggregate);
    EXPECT_GT(result.summary.wallSeconds, 0.0);
    EXPECT_GE(result.summary.speedup(), 0.5);
}

// Fault tolerance --------------------------------------------------------

TEST_F(SweepTest, ValidationFailureIsStructuredAndNeverRetried)
{
    traffic::BenchmarkSuite suite;
    auto jobs = determinismJobs(suite);
    jobs.resize(2);
    jobs[0].configName = "bad-window";
    jobs[0].pearl.reservationWindow = 0; // deterministic config error

    SweepOptions so;
    so.threads = 1;
    so.retryLimit = 3;   // must NOT be spent on a config error
    so.cancelOnError = false;
    const SweepResult result = SweepRunner(so).run(jobs);

    EXPECT_FALSE(result.jobs[0].ok);
    EXPECT_EQ(result.jobs[0].errorCode, ErrorCode::InvalidConfig);
    EXPECT_EQ(result.jobs[0].attempts, 1);
    EXPECT_NE(result.jobs[0].error.find("reservationWindow"),
              std::string::npos);
    EXPECT_NE(result.jobs[0].error.find("bad-window"),
              std::string::npos);
    EXPECT_TRUE(result.jobs[1].ok);
    EXPECT_EQ(result.summary.retries, 0u);
    EXPECT_EQ(result.summary.failed, 1u);
}

TEST_F(SweepTest, RetryReplaysTransientFailureWithIdenticalSeed)
{
    // Job 1 throws on its first two attempts, then succeeds; the other
    // jobs are clean.  The sweep must retry with the *same* derived
    // seed each time and report the attempt accounting.
    auto failures = std::make_shared<std::atomic<int>>(0);
    auto seeds = std::make_shared<std::vector<std::uint64_t>>();

    std::vector<RunSpec> jobs;
    for (int i = 0; i < 3; ++i) {
        RunSpec job;
        job.configName = "r" + std::to_string(i);
        job.custom = [i, failures, seeds](const RunSpec &,
                                          std::uint64_t seed) {
            if (i == 1) {
                seeds->push_back(seed);
                if (failures->fetch_add(1) < 2)
                    throw std::runtime_error("transient I/O glitch");
            }
            RunMetrics m;
            m.deliveredPackets = seed; // proves the seed reached us
            return m;
        };
        jobs.push_back(std::move(job));
    }

    SweepOptions so;
    so.threads = 1;
    so.baseSeed = 42;
    so.retryLimit = 2;
    const SweepResult result = SweepRunner(so).run(jobs);

    ASSERT_TRUE(result.allOk());
    EXPECT_EQ(result.jobs[1].attempts, 3);
    EXPECT_EQ(result.summary.retries, 2u);
    ASSERT_EQ(seeds->size(), 3u);
    EXPECT_EQ((*seeds)[0], deriveSeed(42, 1));
    EXPECT_EQ((*seeds)[1], (*seeds)[0]);
    EXPECT_EQ((*seeds)[2], (*seeds)[0]);
    EXPECT_EQ(result.jobs[0].attempts, 1);
    EXPECT_EQ(result.jobs[2].attempts, 1);
}

TEST_F(SweepTest, RetryBudgetExhaustedReportsStructuredFailure)
{
    std::vector<RunSpec> jobs(1);
    jobs[0].configName = "always-fails";
    jobs[0].custom = [](const RunSpec &, std::uint64_t) -> RunMetrics {
        throw std::runtime_error("persistent failure");
    };
    SweepOptions so;
    so.threads = 1;
    so.retryLimit = 2;
    const SweepResult result = SweepRunner(so).run(jobs);
    EXPECT_FALSE(result.jobs[0].ok);
    EXPECT_EQ(result.jobs[0].attempts, 3);
    EXPECT_EQ(result.jobs[0].errorCode, ErrorCode::JobFailed);
    EXPECT_NE(result.jobs[0].error.find("persistent"),
              std::string::npos);
    EXPECT_EQ(result.summary.retries, 2u);
}

/** RAII temp journal path, removed on destruction. */
struct TempJournal
{
    std::string path;
    explicit TempJournal(const char *name)
        : path(::testing::TempDir() + "/" + name)
    {
        std::remove(path.c_str());
    }
    ~TempJournal() { std::remove(path.c_str()); }
};

TEST_F(SweepTest, ResumeRestoresJournaledJobsBitIdentical)
{
    traffic::BenchmarkSuite suite;
    auto jobs = determinismJobs(suite);
    jobs.resize(4);

    TempJournal journal("sweep_resume.csv");
    SweepOptions so;
    so.threads = 1;
    so.baseSeed = 12345;
    so.journalPath = journal.path;
    const SweepResult full = SweepRunner(so).run(jobs);
    ASSERT_TRUE(full.allOk());

    // Simulate a crash after two jobs: truncate the journal to the
    // header plus the first two rows.
    std::vector<std::string> lines;
    {
        std::ifstream in(journal.path);
        std::string line;
        while (std::getline(in, line))
            lines.push_back(line);
    }
    ASSERT_EQ(lines.size(), 5u); // header + 4 rows
    {
        std::ofstream out(journal.path, std::ios::trunc);
        for (std::size_t i = 0; i < 3; ++i)
            out << lines[i] << "\n";
    }

    so.resume = true;
    const SweepResult resumed = SweepRunner(so).run(jobs);
    ASSERT_TRUE(resumed.allOk());
    EXPECT_EQ(resumed.summary.resumed, 2u);
    int restored = 0;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        SCOPED_TRACE("job " + std::to_string(i));
        restored += resumed.jobs[i].resumed ? 1 : 0;
        EXPECT_EQ(resumed.jobs[i].seed, full.jobs[i].seed);
        expectBitIdentical(resumed.jobs[i].metrics,
                           full.jobs[i].metrics);
    }
    EXPECT_EQ(restored, 2);

    // Second resume: the journal now holds every job again, so nothing
    // re-runs and the results are still bit-identical.
    const SweepResult all_restored = SweepRunner(so).run(jobs);
    ASSERT_TRUE(all_restored.allOk());
    EXPECT_EQ(all_restored.summary.resumed, 4u);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_TRUE(all_restored.jobs[i].resumed);
        EXPECT_EQ(all_restored.jobs[i].attempts, 0);
        expectBitIdentical(all_restored.jobs[i].metrics,
                           full.jobs[i].metrics);
    }
}

TEST_F(SweepTest, StaleJournalEntriesAreRerunNotTrusted)
{
    traffic::BenchmarkSuite suite;
    auto jobs = determinismJobs(suite);
    jobs.resize(2);

    TempJournal journal("sweep_stale.csv");
    SweepOptions so;
    so.threads = 1;
    so.baseSeed = 12345;
    so.journalPath = journal.path;
    const SweepResult full = SweepRunner(so).run(jobs);
    ASSERT_TRUE(full.allOk());

    // A different base seed invalidates every journal row (the stored
    // seed no longer matches the derived one): everything re-runs.
    so.resume = true;
    so.baseSeed = 999;
    const SweepResult rerun = SweepRunner(so).run(jobs);
    ASSERT_TRUE(rerun.allOk());
    EXPECT_EQ(rerun.summary.resumed, 0u);
    for (const auto &j : rerun.jobs)
        EXPECT_FALSE(j.resumed);
}

TEST_F(SweepTest, ResumeRefusesAForeignJournalFile)
{
    traffic::BenchmarkSuite suite;
    auto jobs = determinismJobs(suite);
    jobs.resize(1);

    TempJournal journal("not_a_journal.csv");
    {
        std::ofstream out(journal.path);
        out << "these,are,not,journal,columns\n1,2,3,4,5\n";
    }
    SweepOptions so;
    so.threads = 1;
    so.journalPath = journal.path;
    so.resume = true;
    EXPECT_THROW(SweepRunner(so).run(jobs), ConfigError);
}

TEST_F(SweepTest, SweepOptionsFromEnvReadsResilienceKnobs)
{
    setenv("PEARL_SWEEP_RETRY", "4", 1);
    setenv("PEARL_SWEEP_JOURNAL", "/tmp/j.csv", 1);
    setenv("PEARL_SWEEP_RESUME", "true", 1);
    SweepOptions opts = SweepOptions::fromEnv();
    EXPECT_EQ(opts.retryLimit, 4);
    EXPECT_EQ(opts.journalPath, "/tmp/j.csv");
    EXPECT_TRUE(opts.resume);

    // Garbage falls back to the defaults (warn-and-continue).
    setenv("PEARL_SWEEP_RETRY", "-3", 1);
    setenv("PEARL_SWEEP_RESUME", "maybe", 1);
    unsetenv("PEARL_SWEEP_JOURNAL");
    opts = SweepOptions::fromEnv();
    EXPECT_EQ(opts.retryLimit, 0);
    EXPECT_TRUE(opts.journalPath.empty());
    EXPECT_FALSE(opts.resume);

    unsetenv("PEARL_SWEEP_RETRY");
    unsetenv("PEARL_SWEEP_RESUME");
}

} // namespace
} // namespace metrics
} // namespace pearl
