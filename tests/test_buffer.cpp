/**
 * @file
 * Tests for the flit-slot-accounted buffers feeding the DBA occupancy
 * computation (Equations 1-3).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>

#include "sim/buffer.hpp"
#include "sim/ring_queue.hpp"

namespace pearl {
namespace sim {
namespace {

Packet
makePacket(int size_bits, MsgClass cls = MsgClass::ReqCpuL1D)
{
    Packet p;
    p.sizeBits = size_bits;
    p.msgClass = cls;
    return p;
}

TEST(FlitBuffer, StartsEmpty)
{
    FlitBuffer buf(16);
    EXPECT_TRUE(buf.empty());
    EXPECT_EQ(buf.occupiedSlots(), 0);
    EXPECT_EQ(buf.freeSlots(), 16);
    EXPECT_DOUBLE_EQ(buf.occupancy(), 0.0);
}

TEST(FlitBuffer, PushAccountsFlits)
{
    FlitBuffer buf(16);
    ASSERT_TRUE(buf.push(makePacket(kResponseBits))); // 5 flits
    EXPECT_EQ(buf.occupiedSlots(), 5);
    EXPECT_DOUBLE_EQ(buf.occupancy(), 5.0 / 16.0);
    ASSERT_TRUE(buf.push(makePacket(kRequestBits))); // 1 flit
    EXPECT_EQ(buf.occupiedSlots(), 6);
    EXPECT_EQ(buf.packetCount(), 2u);
}

TEST(FlitBuffer, RejectsWhenFull)
{
    FlitBuffer buf(6);
    ASSERT_TRUE(buf.push(makePacket(kResponseBits))); // 5
    EXPECT_FALSE(buf.canAccept(5));
    EXPECT_FALSE(buf.push(makePacket(kResponseBits)));
    EXPECT_EQ(buf.occupiedSlots(), 5); // unchanged on failure
    EXPECT_TRUE(buf.push(makePacket(kRequestBits))); // exactly fits
    EXPECT_EQ(buf.freeSlots(), 0);
}

TEST(FlitBuffer, FifoOrder)
{
    FlitBuffer buf(16);
    Packet a = makePacket(kRequestBits);
    a.id = 1;
    Packet b = makePacket(kRequestBits);
    b.id = 2;
    buf.push(a);
    buf.push(b);
    EXPECT_EQ(buf.pop().id, 1u);
    EXPECT_EQ(buf.pop().id, 2u);
    EXPECT_TRUE(buf.empty());
}

TEST(FlitBuffer, PopReleasesSlots)
{
    FlitBuffer buf(8);
    buf.push(makePacket(kResponseBits));
    buf.push(makePacket(kRequestBits));
    buf.pop();
    EXPECT_EQ(buf.occupiedSlots(), 1);
    EXPECT_EQ(buf.freeSlots(), 7);
}

TEST(FlitBuffer, ClearEmpties)
{
    FlitBuffer buf(8);
    buf.push(makePacket(kResponseBits));
    buf.clear();
    EXPECT_TRUE(buf.empty());
    EXPECT_EQ(buf.occupiedSlots(), 0);
}

TEST(FlitBuffer, FullOccupancyIsOne)
{
    FlitBuffer buf(5);
    buf.push(makePacket(kResponseBits));
    EXPECT_DOUBLE_EQ(buf.occupancy(), 1.0);
}

TEST(DualClassBuffer, ClassesAreIndependent)
{
    DualClassBuffer dual(8, 8);
    Packet cpu = makePacket(kResponseBits, MsgClass::ReqCpuL2Down);
    Packet gpu = makePacket(kRequestBits, MsgClass::ReqGpuL2Down);
    ASSERT_TRUE(dual.of(CoreType::CPU).push(cpu));
    ASSERT_TRUE(dual.of(CoreType::GPU).push(gpu));
    EXPECT_DOUBLE_EQ(dual.occupancy(CoreType::CPU), 5.0 / 8.0);
    EXPECT_DOUBLE_EQ(dual.occupancy(CoreType::GPU), 1.0 / 8.0);
}

TEST(DualClassBuffer, TotalOccupancyIsSum)
{
    // Buf_omega = beta_CPU + beta_GPU (Eq. 3): ranges to 2.0.
    DualClassBuffer dual(5, 5);
    dual.of(CoreType::CPU).push(makePacket(kResponseBits));
    dual.of(CoreType::GPU).push(makePacket(kResponseBits));
    EXPECT_DOUBLE_EQ(dual.totalOccupancy(), 2.0);
}

TEST(DualClassBuffer, GpuCannotBlockCpu)
{
    // The paper's requirement: GPU traffic never occupies CPU slots.
    DualClassBuffer dual(8, 5);
    dual.of(CoreType::GPU).push(makePacket(kResponseBits));
    EXPECT_FALSE(dual.of(CoreType::GPU).canAccept(5));
    EXPECT_TRUE(dual.of(CoreType::CPU).canAccept(5));
}

TEST(DualClassBuffer, EmptyAndClear)
{
    DualClassBuffer dual(4, 4);
    EXPECT_TRUE(dual.empty());
    dual.of(CoreType::CPU).push(makePacket(kRequestBits));
    EXPECT_FALSE(dual.empty());
    dual.clear();
    EXPECT_TRUE(dual.empty());
}

// RingQueue is the allocation-free FIFO under FlitBuffer and the MWSR
// VOQs; these tests pin the edge cases the hot loops rely on.

TEST(RingQueue, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(RingQueue<int>(1).capacity(), 1u);
    EXPECT_EQ(RingQueue<int>(2).capacity(), 2u);
    EXPECT_EQ(RingQueue<int>(3).capacity(), 4u);
    EXPECT_EQ(RingQueue<int>(5).capacity(), 8u);
    EXPECT_EQ(RingQueue<int>(64).capacity(), 64u);
}

TEST(RingQueue, CapacityOneWrapsCleanly)
{
    RingQueue<int> q(1);
    EXPECT_EQ(q.capacity(), 1u);
    for (int i = 0; i < 10; ++i) {
        EXPECT_TRUE(q.empty());
        q.push_back(i);
        EXPECT_TRUE(q.full());
        EXPECT_EQ(q.front(), i);
        EXPECT_EQ(q.back(), i);
        q.pop_front();
    }
    EXPECT_TRUE(q.empty());
}

TEST(RingQueue, FifoOrderSurvivesManyWraps)
{
    // A steady push/pop at partial fill walks head_ around the ring many
    // times; order and the head/tail views must never skew.
    RingQueue<int> q(4);
    int next_in = 0;
    int next_out = 0;
    for (int round = 0; round < 100; ++round) {
        while (q.size() < 3)
            q.push_back(next_in++);
        EXPECT_EQ(q.front(), next_out);
        EXPECT_EQ(q.back(), next_in - 1);
        q.pop_front();
        ++next_out;
    }
    while (!q.empty()) {
        EXPECT_EQ(q.front(), next_out++);
        q.pop_front();
    }
    EXPECT_EQ(next_out, next_in);
}

TEST(RingQueue, ClearMidWrapThenRefillToCapacity)
{
    RingQueue<int> q(4);
    for (int i = 0; i < 3; ++i)
        q.push_back(i);
    q.pop_front();
    q.pop_front(); // head_ is now mid-ring
    q.clear();
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
    for (int i = 0; i < 4; ++i)
        q.push_back(10 + i);
    EXPECT_TRUE(q.full());
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(q.front(), 10 + i);
        q.pop_front();
    }
}

TEST(RingQueue, MatchesDequeUnderRandomTraffic)
{
    // Differential test against std::deque (the container RingQueue
    // replaced): any divergence in size, order or head/tail views is a
    // bug in the ring arithmetic.
    RingQueue<int> ring(8);
    std::deque<int> ref;
    std::uint64_t lcg = 12345;
    int next = 0;
    for (int step = 0; step < 2000; ++step) {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        const bool push = (lcg >> 33) % 2 == 0;
        if (push && ring.size() < ring.capacity()) {
            ring.push_back(next);
            ref.push_back(next);
            ++next;
        } else if (!ref.empty()) {
            EXPECT_EQ(ring.front(), ref.front());
            ring.pop_front();
            ref.pop_front();
        }
        ASSERT_EQ(ring.size(), ref.size());
        ASSERT_EQ(ring.empty(), ref.empty());
        if (!ref.empty()) {
            ASSERT_EQ(ring.front(), ref.front());
            ASSERT_EQ(ring.back(), ref.back());
        }
    }
}

TEST(FlitBuffer, OccupancyMatchesDequeModelUnderRandomTraffic)
{
    // Differential model: the flit accounting must equal the sum of
    // queued packets' flits no matter how pushes, pops and rejections
    // interleave.
    FlitBuffer buf(32);
    std::deque<Packet> ref;
    int ref_occupied = 0;
    std::uint64_t lcg = 99;
    for (int step = 0; step < 2000; ++step) {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        const std::uint32_t r = static_cast<std::uint32_t>(lcg >> 33);
        if (r % 2 == 0) {
            // 64..640 bits: 1..5 flits at the 128-bit flit size.
            const Packet pkt =
                makePacket(64 + static_cast<int>(r % 5) * 128);
            const bool fits = pkt.numFlits() <= buf.freeSlots();
            EXPECT_EQ(buf.push(pkt), fits);
            if (fits) {
                ref.push_back(pkt);
                ref_occupied += pkt.numFlits();
            }
        } else if (!ref.empty()) {
            const Packet popped = buf.pop();
            EXPECT_EQ(popped.sizeBits, ref.front().sizeBits);
            ref_occupied -= ref.front().numFlits();
            ref.pop_front();
        }
        ASSERT_EQ(buf.packetCount(), ref.size());
        ASSERT_EQ(buf.occupiedSlots(), ref_occupied);
    }
}

TEST(FlitBuffer, ClearBetweenPhasesRestoresFullCapacity)
{
    FlitBuffer buf(8);
    ASSERT_TRUE(buf.push(makePacket(128 * 3)));
    ASSERT_TRUE(buf.push(makePacket(128 * 2)));
    buf.pop(); // head is mid-ring when the phase boundary clears
    buf.clear();
    EXPECT_TRUE(buf.empty());
    EXPECT_EQ(buf.occupiedSlots(), 0);
    EXPECT_EQ(buf.freeSlots(), 8);
    // The freed slots must all be usable again.
    for (int i = 0; i < 8; ++i)
        ASSERT_TRUE(buf.push(makePacket(128)));
    EXPECT_FALSE(buf.push(makePacket(128)));
    EXPECT_DOUBLE_EQ(buf.occupancy(), 1.0);
}

} // namespace
} // namespace sim
} // namespace pearl
