/**
 * @file
 * Tests for the flit-slot-accounted buffers feeding the DBA occupancy
 * computation (Equations 1-3).
 */

#include <gtest/gtest.h>

#include "sim/buffer.hpp"

namespace pearl {
namespace sim {
namespace {

Packet
makePacket(int size_bits, MsgClass cls = MsgClass::ReqCpuL1D)
{
    Packet p;
    p.sizeBits = size_bits;
    p.msgClass = cls;
    return p;
}

TEST(FlitBuffer, StartsEmpty)
{
    FlitBuffer buf(16);
    EXPECT_TRUE(buf.empty());
    EXPECT_EQ(buf.occupiedSlots(), 0);
    EXPECT_EQ(buf.freeSlots(), 16);
    EXPECT_DOUBLE_EQ(buf.occupancy(), 0.0);
}

TEST(FlitBuffer, PushAccountsFlits)
{
    FlitBuffer buf(16);
    ASSERT_TRUE(buf.push(makePacket(kResponseBits))); // 5 flits
    EXPECT_EQ(buf.occupiedSlots(), 5);
    EXPECT_DOUBLE_EQ(buf.occupancy(), 5.0 / 16.0);
    ASSERT_TRUE(buf.push(makePacket(kRequestBits))); // 1 flit
    EXPECT_EQ(buf.occupiedSlots(), 6);
    EXPECT_EQ(buf.packetCount(), 2u);
}

TEST(FlitBuffer, RejectsWhenFull)
{
    FlitBuffer buf(6);
    ASSERT_TRUE(buf.push(makePacket(kResponseBits))); // 5
    EXPECT_FALSE(buf.canAccept(5));
    EXPECT_FALSE(buf.push(makePacket(kResponseBits)));
    EXPECT_EQ(buf.occupiedSlots(), 5); // unchanged on failure
    EXPECT_TRUE(buf.push(makePacket(kRequestBits))); // exactly fits
    EXPECT_EQ(buf.freeSlots(), 0);
}

TEST(FlitBuffer, FifoOrder)
{
    FlitBuffer buf(16);
    Packet a = makePacket(kRequestBits);
    a.id = 1;
    Packet b = makePacket(kRequestBits);
    b.id = 2;
    buf.push(a);
    buf.push(b);
    EXPECT_EQ(buf.pop().id, 1u);
    EXPECT_EQ(buf.pop().id, 2u);
    EXPECT_TRUE(buf.empty());
}

TEST(FlitBuffer, PopReleasesSlots)
{
    FlitBuffer buf(8);
    buf.push(makePacket(kResponseBits));
    buf.push(makePacket(kRequestBits));
    buf.pop();
    EXPECT_EQ(buf.occupiedSlots(), 1);
    EXPECT_EQ(buf.freeSlots(), 7);
}

TEST(FlitBuffer, ClearEmpties)
{
    FlitBuffer buf(8);
    buf.push(makePacket(kResponseBits));
    buf.clear();
    EXPECT_TRUE(buf.empty());
    EXPECT_EQ(buf.occupiedSlots(), 0);
}

TEST(FlitBuffer, FullOccupancyIsOne)
{
    FlitBuffer buf(5);
    buf.push(makePacket(kResponseBits));
    EXPECT_DOUBLE_EQ(buf.occupancy(), 1.0);
}

TEST(DualClassBuffer, ClassesAreIndependent)
{
    DualClassBuffer dual(8, 8);
    Packet cpu = makePacket(kResponseBits, MsgClass::ReqCpuL2Down);
    Packet gpu = makePacket(kRequestBits, MsgClass::ReqGpuL2Down);
    ASSERT_TRUE(dual.of(CoreType::CPU).push(cpu));
    ASSERT_TRUE(dual.of(CoreType::GPU).push(gpu));
    EXPECT_DOUBLE_EQ(dual.occupancy(CoreType::CPU), 5.0 / 8.0);
    EXPECT_DOUBLE_EQ(dual.occupancy(CoreType::GPU), 1.0 / 8.0);
}

TEST(DualClassBuffer, TotalOccupancyIsSum)
{
    // Buf_omega = beta_CPU + beta_GPU (Eq. 3): ranges to 2.0.
    DualClassBuffer dual(5, 5);
    dual.of(CoreType::CPU).push(makePacket(kResponseBits));
    dual.of(CoreType::GPU).push(makePacket(kResponseBits));
    EXPECT_DOUBLE_EQ(dual.totalOccupancy(), 2.0);
}

TEST(DualClassBuffer, GpuCannotBlockCpu)
{
    // The paper's requirement: GPU traffic never occupies CPU slots.
    DualClassBuffer dual(8, 5);
    dual.of(CoreType::GPU).push(makePacket(kResponseBits));
    EXPECT_FALSE(dual.of(CoreType::GPU).canAccept(5));
    EXPECT_TRUE(dual.of(CoreType::CPU).canAccept(5));
}

TEST(DualClassBuffer, EmptyAndClear)
{
    DualClassBuffer dual(4, 4);
    EXPECT_TRUE(dual.empty());
    dual.of(CoreType::CPU).push(makePacket(kRequestBits));
    EXPECT_FALSE(dual.empty());
    dual.clear();
    EXPECT_TRUE(dual.empty());
}

} // namespace
} // namespace sim
} // namespace pearl
