/**
 * @file
 * Tests of the experiment runner and metric aggregation.
 */

#include <gtest/gtest.h>

#include "metrics/experiment.hpp"
#include "traffic/suite.hpp"

namespace pearl {
namespace metrics {
namespace {

class MetricsTest : public ::testing::Test
{
  protected:
    MetricsTest() : pair_{suite_.find("Rad"), suite_.find("QRS")}
    {
        opts_.warmupCycles = 500;
        opts_.measureCycles = 3000;
    }

    traffic::BenchmarkSuite suite_;
    traffic::BenchmarkPair pair_;
    RunOptions opts_;
};

TEST_F(MetricsTest, PearlRunProducesMetrics)
{
    core::PearlConfig cfg;
    core::DbaConfig dba;
    core::StaticPolicy policy(photonic::WlState::WL64);
    const auto m = runPearl(pair_, cfg, dba, policy, opts_, "test");
    EXPECT_EQ(m.configName, "test");
    EXPECT_EQ(m.pairLabel, "Rad+QRS");
    EXPECT_EQ(m.cycles, opts_.measureCycles);
    EXPECT_GT(m.deliveredPackets, 0u);
    EXPECT_GT(m.throughputFlitsPerCycle, 0.0);
    EXPECT_GT(m.throughputGbps, 0.0);
    EXPECT_GT(m.energyPerBitPj, 0.0);
    EXPECT_NEAR(m.laserPowerW, 1.16, 0.01);
    EXPECT_NEAR(m.residency[4], 1.0, 1e-9); // always 64WL
}

TEST_F(MetricsTest, CmeshRunProducesMetrics)
{
    electrical::CmeshConfig cfg;
    const auto m = runCmesh(pair_, cfg, opts_, "cmesh");
    EXPECT_GT(m.deliveredPackets, 0u);
    EXPECT_GT(m.energyPerBitPj, 0.0);
    EXPECT_DOUBLE_EQ(m.laserPowerW, 0.0);
}

TEST_F(MetricsTest, WarmupIsExcluded)
{
    core::PearlConfig cfg;
    core::DbaConfig dba;
    core::StaticPolicy policy(photonic::WlState::WL64);
    RunOptions long_warmup = opts_;
    long_warmup.warmupCycles = 3000;
    const auto a = runPearl(pair_, cfg, dba, policy, opts_, "a");
    const auto b = runPearl(pair_, cfg, dba, policy, long_warmup, "b");
    // Same measurement length; delivered counts are on the same scale
    // (the warm run sees a warmer cache, not several times the traffic).
    const double ratio = static_cast<double>(b.deliveredPackets) /
                         static_cast<double>(a.deliveredPackets);
    EXPECT_GT(ratio, 0.25);
    EXPECT_LT(ratio, 4.0);
}

TEST_F(MetricsTest, DeterministicForSameSeed)
{
    core::PearlConfig cfg;
    core::DbaConfig dba;
    core::StaticPolicy p1(photonic::WlState::WL64);
    core::StaticPolicy p2(photonic::WlState::WL64);
    const auto a = runPearl(pair_, cfg, dba, p1, opts_, "x");
    const auto b = runPearl(pair_, cfg, dba, p2, opts_, "x");
    EXPECT_EQ(a.deliveredFlits, b.deliveredFlits);
    EXPECT_DOUBLE_EQ(a.totalEnergyJ, b.totalEnergyJ);
}

TEST_F(MetricsTest, LowStateReducesLaserPower)
{
    core::PearlConfig cfg;
    core::DbaConfig dba;
    core::StaticPolicy wl64(photonic::WlState::WL64);
    core::StaticPolicy wl16(photonic::WlState::WL16);
    const auto high = runPearl(pair_, cfg, dba, wl64, opts_, "64");
    const auto low = runPearl(pair_, cfg, dba, wl16, opts_, "16");
    EXPECT_LT(low.laserPowerW, high.laserPowerW * 0.5);
}

TEST_F(MetricsTest, AverageAggregates)
{
    RunMetrics a, b;
    a.configName = b.configName = "cfg";
    a.throughputFlitsPerCycle = 2.0;
    b.throughputFlitsPerCycle = 4.0;
    a.laserPowerW = 1.0;
    b.laserPowerW = 0.5;
    a.deliveredBits = 100;
    b.deliveredBits = 200;
    a.residency[0] = 1.0;
    b.residency[0] = 0.0;
    const auto avg = average({a, b}, "all");
    EXPECT_DOUBLE_EQ(avg.throughputFlitsPerCycle, 3.0);
    EXPECT_DOUBLE_EQ(avg.laserPowerW, 0.75);
    EXPECT_EQ(avg.deliveredBits, 300u);
    EXPECT_DOUBLE_EQ(avg.residency[0], 0.5);
    EXPECT_EQ(avg.pairLabel, "all");
}

} // namespace
} // namespace metrics
} // namespace pearl
