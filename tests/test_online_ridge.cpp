/**
 * @file
 * Tests of the online (RLS) ridge extension and its policy wrapper.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ml/online_ridge.hpp"

namespace pearl {
namespace ml {
namespace {

TEST(OnlineRidge, LearnsLinearFunction)
{
    OnlineRidge model(2, 1.0, 1.0);
    Rng rng(3);
    for (int i = 0; i < 2000; ++i) {
        const double x0 = rng.uniform() * 10.0;
        const double x1 = rng.uniform() * 10.0;
        model.update({x0, x1}, 2.0 * x0 - 0.5 * x1 + 3.0);
    }
    EXPECT_NEAR(model.predict({4.0, 2.0}), 2.0 * 4 - 0.5 * 2 + 3.0, 0.3);
    EXPECT_EQ(model.updates(), 2000u);
}

TEST(OnlineRidge, TracksDriftWithForgetting)
{
    // The relationship flips mid-stream; with forgetting < 1 the model
    // converges to the new one, while a remember-everything model stays
    // in between.
    OnlineRidge adaptive(1, 1.0, 0.98);
    OnlineRidge rigid(1, 1.0, 1.0);
    Rng rng(5);
    for (int i = 0; i < 1500; ++i) {
        const double x = rng.uniform() * 5.0;
        const double y = (i < 750 ? 1.0 : 4.0) * x;
        adaptive.update({x}, y);
        rigid.update({x}, y);
    }
    const double adaptive_pred = adaptive.predict({1.0});
    const double rigid_pred = rigid.predict({1.0});
    EXPECT_NEAR(adaptive_pred, 4.0, 0.3);
    EXPECT_LT(rigid_pred, adaptive_pred); // still dragged by old data
}

TEST(OnlineRidge, WarmStartMatchesOfflineModel)
{
    // Train an offline model, warm-start the online one, and check the
    // two predict identically before any online update.
    Dataset data;
    Rng rng(7);
    for (int i = 0; i < 300; ++i) {
        const double x0 = rng.uniform() * 100.0;
        const double x1 = rng.uniform();
        data.add({x0, x1}, 0.7 * x0 + 12.0 * x1 - 4.0);
    }
    RidgeRegression offline;
    offline.fit(data, 1e-6);

    OnlineRidge online(2);
    online.warmStart(offline);
    for (const auto &probe :
         {std::vector<double>{3.0, 0.5}, {80.0, 0.1}, {0.0, 0.0}}) {
        EXPECT_NEAR(online.predict(probe), offline.predict(probe), 1e-6);
    }
}

TEST(OnlineRidge, WarmStartThenRefines)
{
    // Offline learns an outdated slope; online refinement fixes it.
    Dataset data;
    Rng rng(9);
    for (int i = 0; i < 200; ++i) {
        const double x = rng.uniform() * 10.0;
        data.add({x}, 1.0 * x);
    }
    RidgeRegression offline;
    offline.fit(data, 1e-6);

    OnlineRidge online(1, 1.0, 0.99);
    online.warmStart(offline);
    for (int i = 0; i < 1200; ++i) {
        const double x = rng.uniform() * 10.0;
        online.update({x}, 3.0 * x);
    }
    EXPECT_NEAR(online.predict({2.0}), 6.0, 0.5);
}

TEST(OnlineMlPolicy, PredictTrainLoopRuns)
{
    OnlineRidge model(static_cast<std::size_t>(kNumFeatures), 10.0,
                      0.999);
    MlPolicyConfig cfg;
    OnlineMlPolicy policy(&model, 17, cfg);

    sim::RouterTelemetry tel;
    tel.packetsInjected = 12;
    core::WindowObservation obs;
    obs.router = 3;
    obs.telemetry = &tel;
    obs.windowCycles = 500;

    // First window: prediction only (nothing to train on yet).
    (void)policy.nextState(obs);
    EXPECT_EQ(model.updates(), 0u);
    // Second window: the previous features get this window's label.
    (void)policy.nextState(obs);
    EXPECT_EQ(model.updates(), 1u);
    // Routers train independently.
    obs.router = 7;
    (void)policy.nextState(obs);
    EXPECT_EQ(model.updates(), 1u);
    (void)policy.nextState(obs);
    EXPECT_EQ(model.updates(), 2u);
    EXPECT_STREQ(policy.name(), "online-ml");
}

TEST(OnlineRidge, PredictionConvergesOnRepeatedSample)
{
    OnlineRidge model(3, 5.0, 1.0);
    const std::vector<double> x = {1.0, 2.0, 3.0};
    for (int i = 0; i < 200; ++i)
        model.update(x, 42.0);
    EXPECT_NEAR(model.predict(x), 42.0, 0.5);
}

} // namespace
} // namespace ml
} // namespace pearl
