/**
 * @file
 * Tests of the PEARL router microarchitecture: serialization timing,
 * DBA-driven splits, reservation overhead, laser blackout, ejection and
 * telemetry.
 */

#include <gtest/gtest.h>

#include "core/router.hpp"
#include "photonic/power_model.hpp"

namespace pearl {
namespace core {
namespace {

using photonic::PowerModel;
using photonic::WlState;
using sim::CoreType;
using sim::Cycle;
using sim::MsgClass;
using sim::Packet;

Packet
makePacket(MsgClass cls, int size_bits, int dst = 5)
{
    static std::uint64_t seq = 0;
    Packet p;
    p.id = ++seq;
    p.msgClass = cls;
    p.sizeBits = size_bits;
    p.src = 0;
    p.dst = dst;
    return p;
}

class PearlRouterTest : public ::testing::Test
{
  protected:
    PearlRouterTest() : power_()
    {
        cfg_.reservationCycles = 2;
    }

    void
    makeRouter(WlState initial = WlState::WL64)
    {
        cfg_.initialState = initial;
        router_ = std::make_unique<PearlRouter>(0, cfg_, power_,
                                                DbaConfig{});
    }

    /** Run transmit cycles until `n` packets completed or limit hit. */
    int
    cyclesToTransmit(std::size_t n, int limit = 1000)
    {
        std::vector<TxCompletion> done;
        int cycles = 0;
        while (done.size() < n && cycles < limit) {
            router_->transmitCycle(now_++, done);
            ++cycles;
        }
        EXPECT_EQ(done.size(), n);
        return cycles;
    }

    PowerModel power_;
    PearlConfig cfg_;
    std::unique_ptr<PearlRouter> router_;
    Cycle now_ = 0;
};

TEST_F(PearlRouterTest, InjectRespectsCapacity)
{
    makeRouter();
    // CPU buffer: 64 slots of 1-flit requests.
    for (int i = 0; i < 64; ++i) {
        ASSERT_TRUE(router_->inject(
            makePacket(MsgClass::ReqCpuL2Down, sim::kRequestBits), 0));
    }
    EXPECT_FALSE(router_->canAccept(
        makePacket(MsgClass::ReqCpuL2Down, sim::kRequestBits)));
    // GPU class has its own pool.
    EXPECT_TRUE(router_->canAccept(
        makePacket(MsgClass::ReqGpuL2Down, sim::kRequestBits)));
}

TEST_F(PearlRouterTest, SingleRequestTiming)
{
    // 1 flit at 64 WL: 2 reservation cycles + 2 serialization cycles.
    makeRouter(WlState::WL64);
    router_->inject(makePacket(MsgClass::ReqCpuL2Down, sim::kRequestBits),
                    0);
    EXPECT_EQ(cyclesToTransmit(1), 4);
}

TEST_F(PearlRouterTest, ResponseTimingAt64Wl)
{
    // 5 flits = 640 bits at 64 b/cyc: 10 cycles + 2 reservation.
    makeRouter(WlState::WL64);
    router_->inject(
        makePacket(MsgClass::RespCpuL2Down, sim::kResponseBits), 0);
    EXPECT_EQ(cyclesToTransmit(1), 12);
}

TEST_F(PearlRouterTest, LowStateIsSlower)
{
    // The same response at 8 WL: 640/8 = 80 cycles + reservation.
    makeRouter(WlState::WL8);
    router_->inject(
        makePacket(MsgClass::RespCpuL2Down, sim::kResponseBits), 0);
    EXPECT_EQ(cyclesToTransmit(1), 82);
}

TEST_F(PearlRouterTest, BackToBackHidesReservation)
{
    makeRouter(WlState::WL64);
    router_->inject(makePacket(MsgClass::ReqCpuL2Down, sim::kRequestBits),
                    0);
    router_->inject(makePacket(MsgClass::ReqCpuL2Down, sim::kRequestBits),
                    0);
    // First: 2 res + 2 data.  Second: reservation overlapped, 2 data.
    EXPECT_EQ(cyclesToTransmit(2), 6);
}

TEST_F(PearlRouterTest, DbaGivesFullBandwidthToSoleClass)
{
    // Only CPU traffic: Algorithm 1 case (a) gives it 100%, so two
    // single-flit packets need 2 cycles each after the reservation.
    makeRouter(WlState::WL64);
    for (int i = 0; i < 4; ++i) {
        router_->inject(
            makePacket(MsgClass::ReqCpuL2Down, sim::kRequestBits), 0);
    }
    EXPECT_EQ(cyclesToTransmit(4), 2 + 4 * 2);
}

TEST_F(PearlRouterTest, ClassesTransmitSimultaneously)
{
    // CPU and GPU packets proceed in parallel on their shares — the
    // paper's goal (iv).
    makeRouter(WlState::WL64);
    router_->inject(
        makePacket(MsgClass::RespCpuL2Down, sim::kResponseBits), 0);
    router_->inject(
        makePacket(MsgClass::RespGpuL2Down, sim::kResponseBits), 0);
    std::vector<TxCompletion> done;
    int cycles = 0;
    while (done.size() < 2 && cycles < 200) {
        router_->transmitCycle(now_++, done);
        ++cycles;
    }
    ASSERT_EQ(done.size(), 2u);
    // At a 50/50 split each class gets 32 b/cyc: 640/32 = 20 cycles
    // + 2 reservation; far less than a serialised 2 x 12.
    EXPECT_LE(cycles, 24);
}

TEST_F(PearlRouterTest, LaserBlackoutStopsTransmission)
{
    makeRouter(WlState::WL16);
    router_->inject(makePacket(MsgClass::ReqCpuL2Down, sim::kRequestBits),
                    0);
    router_->laser().requestState(WlState::WL64, 0); // 4-cycle blackout
    std::vector<TxCompletion> done;
    for (Cycle t = 0; t < 4; ++t) {
        EXPECT_EQ(router_->transmitCycle(t, done), 0);
    }
    EXPECT_TRUE(done.empty());
    now_ = 4;
    EXPECT_EQ(cyclesToTransmit(1), 4); // 2 res + 2 data once stable
}

TEST_F(PearlRouterTest, TelemetryLabelCountsInjections)
{
    makeRouter();
    router_->inject(makePacket(MsgClass::ReqCpuL2Down, sim::kRequestBits),
                    0);
    router_->inject(
        makePacket(MsgClass::RespGpuL2Down, sim::kResponseBits), 0);
    const auto &t = router_->telemetry();
    EXPECT_EQ(t.packetsInjected, 2u);
    EXPECT_EQ(t.incomingFromCores, 2u);
    EXPECT_EQ(t.requestsSent, 1u);
    EXPECT_EQ(t.responsesSent, 1u);
    EXPECT_EQ(t.classCounts[static_cast<int>(MsgClass::ReqCpuL2Down)], 1u);
}

TEST_F(PearlRouterTest, RxEnqueueAndEject)
{
    makeRouter();
    Packet p = makePacket(MsgClass::RespCpuL2Down, sim::kResponseBits);
    p.dst = 0;
    ASSERT_TRUE(router_->rxEnqueue(p));
    EXPECT_EQ(router_->telemetry().incomingFromRouters, 1u);
    EXPECT_EQ(router_->telemetry().responsesReceived, 1u);

    std::vector<Packet> delivered;
    // 5 flits at 4 flits/cycle: two eject cycles.
    router_->ejectCycle(10, delivered);
    EXPECT_TRUE(delivered.empty());
    router_->ejectCycle(11, delivered);
    ASSERT_EQ(delivered.size(), 1u);
    EXPECT_EQ(delivered[0].cycleDelivered, 11u);
    EXPECT_EQ(router_->telemetry().packetsToCore, 1u);
}

TEST_F(PearlRouterTest, RxBackpressureWhenFull)
{
    cfg_.rxSlotsPerClass = 5;
    makeRouter();
    Packet p = makePacket(MsgClass::RespCpuL2Down, sim::kResponseBits);
    p.dst = 0;
    EXPECT_TRUE(router_->rxEnqueue(p));
    EXPECT_FALSE(router_->rxEnqueue(p)); // full: 5 of 5 slots used
}

TEST_F(PearlRouterTest, OccupancyAccumulation)
{
    makeRouter();
    router_->inject(
        makePacket(MsgClass::RespCpuL2Down, sim::kResponseBits), 0);
    router_->accumulateOccupancy();
    router_->accumulateOccupancy();
    const auto &t = router_->telemetry();
    EXPECT_NEAR(t.cpuCoreBufOccupancy, 2.0 * 5.0 / 64.0, 1e-12);
    EXPECT_NEAR(router_->betaTotalMean(), 5.0 / 64.0, 1e-12);
}

TEST_F(PearlRouterTest, WindowResetClearsTelemetry)
{
    makeRouter();
    router_->inject(makePacket(MsgClass::ReqCpuL2Down, sim::kRequestBits),
                    0);
    router_->accumulateOccupancy();
    router_->resetWindow(WlState::WL16);
    const auto &t = router_->telemetry();
    EXPECT_EQ(t.packetsInjected, 0u);
    EXPECT_EQ(t.wavelengths, 16);
    EXPECT_DOUBLE_EQ(router_->betaTotalMean(), 0.0);
}

TEST_F(PearlRouterTest, WaveguideGroupMultipliesCapacity)
{
    cfg_.reservationCycles = 0;
    cfg_.initialState = WlState::WL64;
    PearlRouter wide(16, cfg_, power_, DbaConfig{}, /*waveguides=*/4);
    Packet p = makePacket(MsgClass::RespCpuL2Down, sim::kResponseBits);
    ASSERT_TRUE(wide.inject(p, 0));
    std::vector<TxCompletion> done;
    int cycles = 0;
    Cycle t = 0;
    while (done.empty() && cycles < 100) {
        wide.transmitCycle(t++, done);
        ++cycles;
    }
    // 640 bits at 4 x 64 = 256 b/cyc -> 3 cycles.
    EXPECT_EQ(cycles, 3);
}

TEST_F(PearlRouterTest, FcfsModeServesArrivalOrder)
{
    // In FCFS mode the older head gets the whole link; a GPU packet that
    // arrived first monopolises the channel over a later CPU packet.
    cfg_.initialState = photonic::WlState::WL64;
    core::DbaConfig fcfs;
    fcfs.mode = core::DbaConfig::Mode::Fcfs;
    PearlRouter router(0, cfg_, power_, fcfs);
    Packet gpu = makePacket(MsgClass::RespGpuL2Down, sim::kResponseBits);
    Packet cpu = makePacket(MsgClass::ReqCpuL2Down, sim::kRequestBits);
    router.inject(gpu, 0);
    router.inject(cpu, 1); // later arrival
    std::vector<TxCompletion> done;
    Cycle t = 0;
    while (done.empty() && t < 100)
        router.transmitCycle(t++, done);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].pkt.coreType(), CoreType::GPU);
    // The CPU packet completes strictly after the GPU packet.
    while (done.size() < 2 && t < 200)
        router.transmitCycle(t++, done);
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(done[1].pkt.coreType(), CoreType::CPU);
}

TEST_F(PearlRouterTest, IdleReflectsBuffers)
{
    makeRouter();
    EXPECT_TRUE(router_->idle());
    router_->inject(makePacket(MsgClass::ReqCpuL2Down, sim::kRequestBits),
                    0);
    EXPECT_FALSE(router_->idle());
    cyclesToTransmit(1);
    EXPECT_TRUE(router_->idle());
}

} // namespace
} // namespace core
} // namespace pearl
