/**
 * @file
 * Tests for the photonic substrate: wavelength states, loss budget,
 * reservation channel sizing, laser bank and power model.
 */

#include <gtest/gtest.h>

#include "photonic/devices.hpp"
#include "photonic/laser.hpp"
#include "photonic/loss_budget.hpp"
#include "photonic/power_model.hpp"
#include "photonic/reservation.hpp"
#include "photonic/wl_state.hpp"

namespace pearl {
namespace photonic {
namespace {

TEST(WlState, Wavelengths)
{
    EXPECT_EQ(wavelengths(WlState::WL8), 8);
    EXPECT_EQ(wavelengths(WlState::WL16), 16);
    EXPECT_EQ(wavelengths(WlState::WL32), 32);
    EXPECT_EQ(wavelengths(WlState::WL48), 48);
    EXPECT_EQ(wavelengths(WlState::WL64), 64);
}

TEST(WlState, SerializationLatencyTable)
{
    // Section III-C: 64 WL -> 2 cycles per 128-bit flit, 48/32 -> 4,
    // 16 -> 8; the 8WL low state extrapolates to 16.
    EXPECT_EQ(cyclesPerFlit(WlState::WL64), 2);
    EXPECT_EQ(cyclesPerFlit(WlState::WL48), 4);
    EXPECT_EQ(cyclesPerFlit(WlState::WL32), 4);
    EXPECT_EQ(cyclesPerFlit(WlState::WL16), 8);
    EXPECT_EQ(cyclesPerFlit(WlState::WL8), 16);
}

TEST(WlState, BandwidthMonotoneInState)
{
    for (int i = 1; i < kNumWlStates; ++i) {
        EXPECT_GT(bitsPerCycle(stateFromIndex(i)),
                  bitsPerCycle(stateFromIndex(i - 1)));
    }
}

TEST(WlState, IndexRoundTrip)
{
    for (int i = 0; i < kNumWlStates; ++i)
        EXPECT_EQ(indexOf(stateFromIndex(i)), i);
}

TEST(WlState, LitBanks)
{
    EXPECT_DOUBLE_EQ(litBanks(WlState::WL64), 4.0);
    EXPECT_DOUBLE_EQ(litBanks(WlState::WL8), 0.5);
}

TEST(LossBudget, PathLossIsPositiveAndBounded)
{
    LossBudget budget{DeviceConstants{}, ChipGeometry{}};
    const double loss = budget.worstCasePathLossDb();
    EXPECT_GT(loss, 3.0);  // at least the fixed component losses
    EXPECT_LT(loss, 30.0); // sane for an on-chip link
}

TEST(LossBudget, ReservationBroadcastCostsMore)
{
    // The 1:16 split makes the reservation path lossier than the
    // single-reader data path.
    LossBudget budget{DeviceConstants{}, ChipGeometry{}};
    EXPECT_GT(budget.reservationPathLossDb(),
              budget.worstCasePathLossDb());
}

TEST(LossBudget, RequiredPowerScalesWithLoss)
{
    DeviceConstants lossy;
    lossy.waveguideDbPerCm = 2.0;
    LossBudget base{DeviceConstants{}, ChipGeometry{}};
    LossBudget worse{lossy, ChipGeometry{}};
    EXPECT_GT(worse.requiredLaserOpticalW(), base.requiredLaserOpticalW());
}

TEST(LossBudget, ElectricalPowerLinearInWavelengths)
{
    LossBudget budget{DeviceConstants{}, ChipGeometry{}};
    const double w16 = budget.electricalLaserW(WlState::WL16, 0.1);
    const double w64 = budget.electricalLaserW(WlState::WL64, 0.1);
    EXPECT_NEAR(w64 / w16, 4.0, 1e-9);
}

TEST(LossBudget, CalibratedEfficiencyConsistent)
{
    // Deriving laser power with the calibrated efficiency reproduces the
    // paper's 1.16 W full-state figure.
    LossBudget budget{DeviceConstants{}, ChipGeometry{}};
    const double eta = budget.calibratedEfficiency(1.16);
    EXPECT_GT(eta, 0.0);
    EXPECT_LT(eta, 1.0);
    EXPECT_NEAR(budget.electricalLaserW(WlState::WL64, eta), 1.16, 1e-9);
}

TEST(Reservation, PacketSizeFormula)
{
    // ResPacket = ceil(log2(2 * 16 * 2 * 2 * 5 * 1)) = ceil(log2(640)).
    ReservationChannel ch;
    EXPECT_EQ(ch.packetBits(), 10);
}

TEST(Reservation, WavelengthsCoverOneCyclBroadcast)
{
    ReservationChannel ch;
    const int wl = ch.wavelengthsNeeded();
    EXPECT_GE(wl, 1);
    // With that many wavelengths the broadcast fits in 1 cycle + 1 tune.
    EXPECT_EQ(ch.latencyCycles(wl), 2);
}

TEST(Reservation, MoreRoutersNeedBiggerPackets)
{
    ReservationConfig big;
    big.numRouters = 64;
    EXPECT_GT(ReservationChannel(big).packetBits(),
              ReservationChannel().packetBits());
}

TEST(PowerModel, PaperCalibratedValues)
{
    PowerModel model;
    EXPECT_DOUBLE_EQ(model.laserPowerW(WlState::WL64), 1.16);
    EXPECT_DOUBLE_EQ(model.laserPowerW(WlState::WL48), 0.871);
    EXPECT_DOUBLE_EQ(model.laserPowerW(WlState::WL32), 0.581);
    EXPECT_DOUBLE_EQ(model.laserPowerW(WlState::WL16), 0.29);
    EXPECT_DOUBLE_EQ(model.laserPowerW(WlState::WL8), 0.145);
}

TEST(PowerModel, NearlyLinearInWavelengths)
{
    // "The laser power increases almost linearly with the number of
    // wavelengths" (Section III-C).
    PowerModel model;
    for (int i = 0; i < kNumWlStates; ++i) {
        const WlState s = stateFromIndex(i);
        const double per_wl =
            model.laserPowerW(s) / wavelengths(s);
        EXPECT_NEAR(per_wl, 1.16 / 64.0, 0.15 * 1.16 / 64.0);
    }
}

TEST(PowerModel, ScaledDividesUniformly)
{
    PowerModel model;
    PowerModel per_router = model.scaled(1.0 / 24.0);
    EXPECT_NEAR(per_router.laserPowerW(WlState::WL64), 1.16 / 24.0, 1e-12);
}

TEST(PowerModel, TrimmingScalesWithLitBanks)
{
    PowerModel model;
    const double full = model.trimmingPowerW(WlState::WL64, 64, 64);
    const double quarter = model.trimmingPowerW(WlState::WL16, 64, 64);
    EXPECT_GT(full, quarter);
    // The receive-side heaters are state independent.
    const double rx_only = model.trimmingPowerW(WlState::WL16, 0, 64);
    EXPECT_DOUBLE_EQ(rx_only, 64 * DeviceConstants{}.ringHeatingW);
}

TEST(PowerModel, DynamicEnergyPerBitPositiveAndSmall)
{
    PowerModel model;
    const double e = model.dynamicEnergyPerBitJ();
    EXPECT_GT(e, 0.0);
    EXPECT_LT(e, 5e-12); // well under 5 pJ/bit
}

TEST(PowerModel, FromLossBudget)
{
    LossBudget budget{DeviceConstants{}, ChipGeometry{}};
    const double eta = budget.calibratedEfficiency(1.16);
    PowerModel derived = PowerModel::fromLossBudget(budget, eta);
    EXPECT_NEAR(derived.laserPowerW(WlState::WL64), 1.16, 1e-9);
    EXPECT_NEAR(derived.laserPowerW(WlState::WL32), 0.58, 0.01);
}

// ---- LaserBank -------------------------------------------------------

TEST(LaserBank, StartsStable)
{
    PowerModel model;
    LaserBank bank(model, 4, WlState::WL64);
    EXPECT_TRUE(bank.stable(0));
    EXPECT_EQ(bank.state(), WlState::WL64);
}

TEST(LaserBank, DownSwitchIsImmediate)
{
    PowerModel model;
    LaserBank bank(model, 4, WlState::WL64);
    bank.requestState(WlState::WL16, 100);
    EXPECT_EQ(bank.state(), WlState::WL16);
    EXPECT_TRUE(bank.stable(100));
    EXPECT_EQ(bank.downSwitches(), 1u);
}

TEST(LaserBank, UpSwitchBlacksOutForTurnOn)
{
    PowerModel model;
    LaserBank bank(model, 4, WlState::WL16);
    bank.requestState(WlState::WL64, 100);
    EXPECT_EQ(bank.state(), WlState::WL64);
    EXPECT_FALSE(bank.stable(100));
    EXPECT_FALSE(bank.stable(103));
    EXPECT_TRUE(bank.stable(104));
    EXPECT_EQ(bank.upSwitches(), 1u);
}

TEST(LaserBank, SameStateRequestIsNoOp)
{
    PowerModel model;
    LaserBank bank(model, 4, WlState::WL32);
    bank.requestState(WlState::WL32, 50);
    EXPECT_TRUE(bank.stable(50));
    EXPECT_EQ(bank.upSwitches(), 0u);
    EXPECT_EQ(bank.downSwitches(), 0u);
}

TEST(LaserBank, EnergyIntegration)
{
    PowerModel model;
    LaserBank bank(model, 4, WlState::WL64);
    const double dt = 0.5e-9;
    for (int i = 0; i < 1000; ++i)
        bank.tick(dt);
    EXPECT_NEAR(bank.energyJ(), 1.16 * 1000 * dt, 1e-15);
    EXPECT_NEAR(bank.averagePowerW(dt), 1.16, 1e-9);
}

TEST(LaserBank, ResidencyTracksStates)
{
    PowerModel model;
    LaserBank bank(model, 0, WlState::WL64);
    const double dt = 0.5e-9;
    for (int i = 0; i < 750; ++i)
        bank.tick(dt);
    bank.requestState(WlState::WL8, 750);
    for (int i = 0; i < 250; ++i)
        bank.tick(dt);
    EXPECT_NEAR(bank.residency(WlState::WL64), 0.75, 1e-9);
    EXPECT_NEAR(bank.residency(WlState::WL8), 0.25, 1e-9);
    EXPECT_DOUBLE_EQ(bank.residency(WlState::WL32), 0.0);
}

TEST(LaserBank, MixedStateEnergy)
{
    PowerModel model;
    LaserBank bank(model, 0, WlState::WL64);
    const double dt = 1.0;
    bank.tick(dt); // 1.16 J
    bank.requestState(WlState::WL8, 1);
    bank.tick(dt); // + 0.145 J
    EXPECT_NEAR(bank.energyJ(), 1.305, 1e-12);
}

TEST(LaserBank, ResetStats)
{
    PowerModel model;
    LaserBank bank(model, 4, WlState::WL64);
    bank.tick(1.0);
    bank.requestState(WlState::WL8, 1);
    bank.resetStats();
    EXPECT_DOUBLE_EQ(bank.energyJ(), 0.0);
    EXPECT_EQ(bank.cycles(), 0u);
    EXPECT_EQ(bank.downSwitches(), 0u);
}

} // namespace
} // namespace photonic
} // namespace pearl
