/**
 * @file
 * Tests for the common utilities: RNG, statistics, tables, units.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "common/env.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/reservoir.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace pearl {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BelowRespectsBound)
{
    Rng rng(3);
    for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
        for (int i = 0; i < 1000; ++i)
            ASSERT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowCoversRange)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(5);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.range(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(9);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, ForkedStreamsDecorrelated)
{
    Rng parent(21);
    Rng a = parent.fork();
    Rng b = parent.fork();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, GeometricMeanRoughlyInverseP)
{
    Rng rng(31);
    double total = 0.0;
    const int n = 5000;
    for (int i = 0; i < n; ++i)
        total += static_cast<double>(rng.geometric(0.25));
    EXPECT_NEAR(total / n, 4.0, 0.25);
}

TEST(Rng, DeriveSeedIsPureAndDecorrelated)
{
    // Same (base, index) -> same seed; any change -> different seed.
    EXPECT_EQ(deriveSeed(100, 0), deriveSeed(100, 0));
    EXPECT_NE(deriveSeed(100, 0), deriveSeed(100, 1));
    EXPECT_NE(deriveSeed(100, 0), deriveSeed(101, 0));

    // Streams seeded from adjacent indices must not track each other.
    Rng a(deriveSeed(7, 3)), b(deriveSeed(7, 4));
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);

    // No collisions over a realistic sweep width.
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 4096; ++i)
        seen.insert(deriveSeed(100, i));
    EXPECT_EQ(seen.size(), 4096u);
}

TEST(Env, ParseU64AcceptsPlainIntegers)
{
    std::uint64_t v = 0;
    EXPECT_TRUE(parseU64("0", v));
    EXPECT_EQ(v, 0u);
    EXPECT_TRUE(parseU64("60000", v));
    EXPECT_EQ(v, 60000u);
    EXPECT_TRUE(parseU64("18446744073709551615", v));
    EXPECT_EQ(v, std::numeric_limits<std::uint64_t>::max());
}

TEST(Env, ParseU64RejectsGarbage)
{
    std::uint64_t v = 0;
    EXPECT_FALSE(parseU64("abc", v));
    EXPECT_FALSE(parseU64("", v));
    EXPECT_FALSE(parseU64("12abc", v));
    EXPECT_FALSE(parseU64("-5", v));
    EXPECT_FALSE(parseU64("1e4", v));
    // Out of range for 64 bits.
    EXPECT_FALSE(parseU64("99999999999999999999999", v));
}

TEST(Env, EnvU64FallsBackOnGarbage)
{
    // The old std::atoll path silently turned garbage into 0; the
    // strict parser must warn and keep the fallback instead.
    setenv("PEARL_TEST_ENV_U64", "abc", 1);
    EXPECT_EQ(envU64("PEARL_TEST_ENV_U64", 1234u), 1234u);

    setenv("PEARL_TEST_ENV_U64", "77", 1);
    EXPECT_EQ(envU64("PEARL_TEST_ENV_U64", 1234u), 77u);

    unsetenv("PEARL_TEST_ENV_U64");
    EXPECT_EQ(envU64("PEARL_TEST_ENV_U64", 1234u), 1234u);
}

TEST(Env, ParseDoubleAcceptsNumbers)
{
    double v = 0.0;
    EXPECT_TRUE(parseDouble("0", v));
    EXPECT_DOUBLE_EQ(v, 0.0);
    EXPECT_TRUE(parseDouble("-2.5", v));
    EXPECT_DOUBLE_EQ(v, -2.5);
    EXPECT_TRUE(parseDouble("1e-3", v));
    EXPECT_DOUBLE_EQ(v, 1e-3);
    EXPECT_TRUE(parseDouble("42 ", v)); // trailing blanks tolerated
    EXPECT_DOUBLE_EQ(v, 42.0);
}

TEST(Env, ParseDoubleRejectsGarbage)
{
    double v = 0.0;
    EXPECT_FALSE(parseDouble("", v));
    EXPECT_FALSE(parseDouble("abc", v));
    EXPECT_FALSE(parseDouble("1.5x", v));
    EXPECT_FALSE(parseDouble("1e999", v)); // overflow
}

TEST(Env, ParseBoolAcceptsTheUsualSpellings)
{
    bool v = false;
    for (const char *t : {"1", "true", "TRUE", "Yes", "on", " true "}) {
        EXPECT_TRUE(parseBool(t, v)) << t;
        EXPECT_TRUE(v) << t;
    }
    for (const char *f : {"0", "false", "FALSE", "No", "off", " off "}) {
        EXPECT_TRUE(parseBool(f, v)) << f;
        EXPECT_FALSE(v) << f;
    }
}

TEST(Env, ParseBoolRejectsGarbage)
{
    bool v = false;
    EXPECT_FALSE(parseBool("", v));
    EXPECT_FALSE(parseBool("   ", v));
    EXPECT_FALSE(parseBool("2", v));
    EXPECT_FALSE(parseBool("enable", v));
    EXPECT_FALSE(parseBool("true!", v));
}

TEST(Env, EnvDoubleFallsBackOnGarbage)
{
    setenv("PEARL_TEST_ENV_D", "nope", 1);
    EXPECT_DOUBLE_EQ(envDouble("PEARL_TEST_ENV_D", 2.5), 2.5);

    setenv("PEARL_TEST_ENV_D", "0.125", 1);
    EXPECT_DOUBLE_EQ(envDouble("PEARL_TEST_ENV_D", 2.5), 0.125);

    unsetenv("PEARL_TEST_ENV_D");
    EXPECT_DOUBLE_EQ(envDouble("PEARL_TEST_ENV_D", 2.5), 2.5);
}

TEST(Env, EnvBoolFallsBackOnGarbage)
{
    setenv("PEARL_TEST_ENV_B", "maybe", 1);
    EXPECT_TRUE(envBool("PEARL_TEST_ENV_B", true));
    EXPECT_FALSE(envBool("PEARL_TEST_ENV_B", false));

    setenv("PEARL_TEST_ENV_B", "yes", 1);
    EXPECT_TRUE(envBool("PEARL_TEST_ENV_B", false));
    setenv("PEARL_TEST_ENV_B", "off", 1);
    EXPECT_FALSE(envBool("PEARL_TEST_ENV_B", true));

    unsetenv("PEARL_TEST_ENV_B");
    EXPECT_FALSE(envBool("PEARL_TEST_ENV_B", false));
}

TEST(Env, EnvStrReturnsSetValueVerbatim)
{
    unsetenv("PEARL_TEST_ENV_S");
    EXPECT_EQ(envStr("PEARL_TEST_ENV_S", "fb"), "fb");

    setenv("PEARL_TEST_ENV_S", "trace.jsonl", 1);
    EXPECT_EQ(envStr("PEARL_TEST_ENV_S", "fb"), "trace.jsonl");

    // "" is a set value, not an unset one.
    setenv("PEARL_TEST_ENV_S", "", 1);
    EXPECT_EQ(envStr("PEARL_TEST_ENV_S", "fb"), "");
    unsetenv("PEARL_TEST_ENV_S");
}

TEST(EnvRegistry, KnobsAreWellFormed)
{
    std::set<std::string> names;
    for (const EnvKnob &k : envRegistry()) {
        const std::string name = k.name;
        EXPECT_EQ(name.rfind("PEARL_", 0), 0u)
            << name << " lacks the PEARL_ prefix";
        EXPECT_TRUE(names.insert(name).second)
            << name << " registered twice";
        const std::string type = k.type;
        EXPECT_TRUE(type == "bool" || type == "u64" ||
                    type == "double" || type == "string")
            << name << " has unknown type " << type;
        EXPECT_FALSE(std::string(k.fallback).empty()) << name;
        EXPECT_FALSE(std::string(k.summary).empty()) << name;
    }
    EXPECT_GE(names.size(), 25u);
}

TEST(EnvRegistry, HelpRendersEveryKnob)
{
    const std::string help = envHelp();
    for (const EnvKnob &k : envRegistry())
        EXPECT_NE(help.find(k.name), std::string::npos) << k.name;
}

// The README's knob table must be exactly envMarkdownTable()'s output,
// enclosed in the env-table markers.  On drift, regenerate with
// `./build/examples/quickstart --env-help` (or paste
// pearl::envMarkdownTable()) rather than editing the table by hand.
TEST(EnvRegistry, ReadmeTableMatchesRegistry)
{
    std::ifstream readme(PEARL_README_PATH);
    ASSERT_TRUE(readme) << "cannot open " << PEARL_README_PATH;
    std::ostringstream buf;
    buf << readme.rdbuf();
    const std::string text = buf.str();

    const std::string begin_marker = "<!-- env-table:begin";
    const std::string end_marker = "<!-- env-table:end -->";
    const std::size_t begin = text.find(begin_marker);
    ASSERT_NE(begin, std::string::npos) << "README lost the env-table "
                                           "begin marker";
    const std::size_t table_start = text.find('\n', begin) + 1;
    const std::size_t end = text.find(end_marker, table_start);
    ASSERT_NE(end, std::string::npos) << "README lost the env-table "
                                         "end marker";
    EXPECT_EQ(text.substr(table_start, end - table_start),
              envMarkdownTable())
        << "README env table drifted from pearl::envRegistry() — "
           "regenerate it from envMarkdownTable()";
}

TEST(RunningStat, MeanVarianceMinMax)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, ResetClears)
{
    RunningStat s;
    s.add(1.0);
    s.add(2.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(DiscreteHistogram, FractionsSumToOne)
{
    DiscreteHistogram h;
    h.add(0, 10);
    h.add(1, 30);
    h.add(4, 60);
    EXPECT_EQ(h.total(), 100u);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.10);
    EXPECT_DOUBLE_EQ(h.fraction(1), 0.30);
    EXPECT_DOUBLE_EQ(h.fraction(4), 0.60);
    EXPECT_DOUBLE_EQ(h.fraction(2), 0.0);
}

TEST(DiscreteHistogram, EmptyFractionIsZero)
{
    DiscreteHistogram h;
    EXPECT_DOUBLE_EQ(h.fraction(3), 0.0);
}

TEST(CounterGroup, IndexingAndReset)
{
    CounterGroup g({"a", "b", "c"});
    g[0] = 5;
    g[2] += 7;
    EXPECT_EQ(g[0], 5u);
    EXPECT_EQ(g[1], 0u);
    EXPECT_EQ(g[2], 7u);
    EXPECT_EQ(g.name(1), "b");
    g.reset();
    EXPECT_EQ(g[0], 0u);
    EXPECT_EQ(g[2], 0u);
}

TEST(Units, DbRoundTrip)
{
    for (double db : {-30.0, -3.0, 0.0, 3.0, 10.0, 20.0}) {
        EXPECT_NEAR(units::linearToDb(units::dbToLinear(db)), db, 1e-9);
    }
}

TEST(Units, DbmToWatts)
{
    EXPECT_NEAR(units::dbmToWatts(0.0), 1e-3, 1e-12);
    EXPECT_NEAR(units::dbmToWatts(30.0), 1.0, 1e-9);
    EXPECT_NEAR(units::dbmToWatts(-15.0), 31.622776e-6, 1e-9);
}

TEST(Units, TenDbIsFactorTen)
{
    EXPECT_NEAR(units::dbToLinear(10.0), 10.0, 1e-12);
    EXPECT_NEAR(units::dbToLinear(3.0), 1.9952623, 1e-6);
}

TEST(Units, CyclesFor)
{
    // 2 ns at 2 GHz = 4 cycles.
    EXPECT_EQ(units::cyclesFor(2e-9, 2e9), 4u);
    EXPECT_EQ(units::cyclesFor(0.4e-9, 2e9), 1u);
}

TEST(TextTable, AlignsAndPreservesCells)
{
    TextTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    std::ostringstream oss;
    t.print(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
    EXPECT_EQ(t.rows().size(), 2u);
}

TEST(TextTable, CsvOutput)
{
    TextTable t({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream oss;
    t.printCsv(oss);
    EXPECT_EQ(oss.str(), "a,b\n1,2\n");
}

TEST(TextTable, NumberFormatting)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::pct(0.345, 1), "34.5%");
}

TEST(Reservoir, ExactForSmallStreams)
{
    ReservoirSampler r(128);
    for (int i = 1; i <= 100; ++i)
        r.add(static_cast<double>(i));
    EXPECT_EQ(r.count(), 100u);
    EXPECT_EQ(r.sampleSize(), 100u);
    EXPECT_NEAR(r.median(), 50.5, 0.01);
    EXPECT_NEAR(r.quantile(0.0), 1.0, 1e-12);
    EXPECT_NEAR(r.quantile(1.0), 100.0, 1e-12);
}

TEST(Reservoir, EmptyReturnsZero)
{
    ReservoirSampler r(16);
    EXPECT_DOUBLE_EQ(r.median(), 0.0);
    EXPECT_DOUBLE_EQ(r.p99(), 0.0);
}

TEST(Reservoir, ApproximatesLargeStreamQuantiles)
{
    // A uniform [0, 1000) stream: percentiles should land near the
    // analytic values even through subsampling.
    ReservoirSampler r(4096, 7);
    Rng rng(5);
    for (int i = 0; i < 200000; ++i)
        r.add(rng.uniform() * 1000.0);
    EXPECT_EQ(r.sampleSize(), 4096u);
    EXPECT_NEAR(r.median(), 500.0, 40.0);
    EXPECT_NEAR(r.p95(), 950.0, 40.0);
    EXPECT_NEAR(r.p99(), 990.0, 15.0);
}

TEST(Reservoir, ResetClears)
{
    ReservoirSampler r(16);
    r.add(5.0);
    r.reset();
    EXPECT_EQ(r.count(), 0u);
    EXPECT_DOUBLE_EQ(r.median(), 0.0);
}

TEST(Reservoir, TailSensitivity)
{
    // 3% of the stream is a 100x outlier: p99 must see it, the median
    // must not.
    ReservoirSampler r(8192, 3);
    Rng rng(9);
    for (int i = 0; i < 100000; ++i)
        r.add(rng.chance(0.03) ? 1000.0 : 10.0);
    EXPECT_NEAR(r.median(), 10.0, 1e-9);
    EXPECT_GT(r.p99(), 500.0);
}

} // namespace
} // namespace pearl
