/**
 * @file
 * Regenerates Table I: the PEARL architecture specification.
 */

#include "bench_common.hpp"
#include "core/arch_config.hpp"

using namespace pearl;

int
main()
{
    bench::banner("Table I — Architecture Specifications",
                  "Section III-A2, Table I");

    core::ArchSpec spec;
    core::PearlConfig net;

    TextTable cpu({"CPU", "value"});
    cpu.addRow({"Cores", std::to_string(spec.cpuCores)});
    cpu.addRow({"Threads/Core", std::to_string(spec.cpuThreadsPerCore)});
    cpu.addRow({"Frequency (GHz)", TextTable::num(spec.cpuFreqGhz, 0)});
    cpu.addRow({"L1 Instr Cache (kB)", std::to_string(spec.cpuL1InstrKb)});
    cpu.addRow({"L1 Data Cache (kB)", std::to_string(spec.cpuL1DataKb)});
    cpu.addRow({"L2 Cache (kB)", std::to_string(spec.cpuL2Kb)});
    bench::emit(cpu);
    std::cout << "\n";

    TextTable gpu({"GPU", "value"});
    gpu.addRow({"Computation Units", std::to_string(spec.gpuComputeUnits)});
    gpu.addRow({"Frequency (GHz)", TextTable::num(spec.gpuFreqGhz, 0)});
    gpu.addRow({"L1 Cache Size (kB)", std::to_string(spec.gpuL1Kb)});
    gpu.addRow({"L2 Cache Size (kB)", std::to_string(spec.gpuL2Kb)});
    bench::emit(gpu);
    std::cout << "\n";

    TextTable shared({"Shared Components", "value"});
    shared.addRow({"Network Frequency (GHz)",
                   TextTable::num(spec.networkFreqGhz, 0)});
    shared.addRow({"L3 Cache Size (MB)", std::to_string(spec.l3CacheMb)});
    shared.addRow({"Main Memory Size (GB)",
                   std::to_string(spec.mainMemoryGb)});
    shared.addRow({"Clusters (routers)", std::to_string(net.numClusters)});
    shared.addRow({"Network cycle (ns)",
                   TextTable::num(spec.networkCycleSeconds() * 1e9, 2)});
    bench::emit(shared);
    return 0;
}
