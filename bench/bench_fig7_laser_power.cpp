/**
 * @file
 * Regenerates Figure 7: average laser power of the power-scaling
 * architectures with the 8WL low state.
 *
 * Expected shape (paper): 40-65% laser-power savings relative to the
 * 64WL baseline; the 8WL state deepens the ML RW500 savings
 * (65.5% vs 60.7% without it); Dyn RW2000 saves ~55.8%, ML RW2000 ~42%.
 */

#include "bench_powerscale.hpp"

using namespace pearl;

int
main()
{
    bench::banner("Figure 7 — Average laser power of power-scaling "
                  "architectures",
                  "Figure 7, Section IV-C");

    traffic::BenchmarkSuite suite;
    const auto results = bench::runPowerScalingConfigs(suite);
    const auto &base = bench::baselineOf(results);

    TextTable t({"config", "laser power (W)", "savings vs 64WL",
                 "paper savings"});
    const char *paper[] = {"baseline", "46%",   "55.8%",
                           "65.5%",    "60.7%", "42%"};
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        t.addRow({r.name, TextTable::num(r.avg.laserPowerW, 3),
                  TextTable::pct(1.0 - r.avg.laserPowerW /
                                           base.laserPowerW),
                  i < 6 ? paper[i] : ""});
    }
    bench::emit(t);

    std::cout << "\nPer-pair laser power (W):\n";
    TextTable p({"pair", "64WL", "DynRW500", "DynRW2000", "MLRW500",
                 "MLRW500no8", "MLRW2000"});
    const std::size_t pairs = results.front().runs.size();
    for (std::size_t i = 0; i < pairs; ++i) {
        std::vector<std::string> row{results.front().runs[i].pairLabel};
        for (const auto &r : results)
            row.push_back(TextTable::num(r.runs[i].laserPowerW, 3));
        p.addRow(row);
    }
    bench::emit(p);
    bench::sweepFooter();
    return 0;
}
