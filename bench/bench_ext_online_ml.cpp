/**
 * @file
 * Extension (the paper's stated future work): online learning for the
 * ML power scaler.
 *
 * The conclusion of the paper names "improving the prediction accuracy"
 * as the lever for further gains.  This bench deploys a recursive-
 * least-squares model that warm-starts from the offline ridge model and
 * keeps training on every closed window at runtime, and compares it
 * against the offline ML policy and the reactive scaler on the test
 * pairs (which the offline model never saw).
 */

#include "bench_powerscale.hpp"
#include "ml/online_ridge.hpp"

using namespace pearl;

int
main()
{
    bench::banner("Extension — online (RLS) ML power scaling",
                  "Section V future work: better prediction accuracy");

    traffic::BenchmarkSuite suite;
    core::DbaConfig dba;
    const std::uint64_t rw = 500;

    // Baseline and reference policies.
    core::PearlConfig cfg;
    cfg.reservationWindow = rw;
    const auto base = bench::finish(
        "64WL", bench::runPearlGrid(suite, "64WL", cfg, dba, [] {
            return std::make_unique<core::StaticPolicy>(
                photonic::WlState::WL64);
        }));
    const auto reactive = bench::finish(
        "Dyn RW500", bench::runPearlGrid(suite, "Dyn", cfg, dba, [] {
            return std::make_unique<core::ReactivePolicy>();
        }));

    const auto trained = bench::trainedModel(suite, rw);
    ml::MlPolicyConfig pol;
    const auto offline = bench::finish(
        "ML RW500 (offline)",
        bench::runPearlGrid(suite, "ML", cfg, dba, [&trained, pol] {
            return std::make_unique<ml::MlPowerPolicy>(&trained.model,
                                                       pol);
        }));

    // Online: one fresh RLS model per run, warm-started from the
    // offline weights.
    const auto online = bench::finish(
        "ML RW500 (online RLS)",
        bench::runPearlGrid(
            suite, "online", cfg, dba, [&trained, pol] {
                struct Holder : core::PowerPolicy
                {
                    ml::OnlineRidge model;
                    ml::OnlineMlPolicy policy;

                    explicit Holder(const ml::RidgeRegression &offline,
                                    ml::MlPolicyConfig cfg)
                        : model(static_cast<std::size_t>(
                                    ml::kNumFeatures),
                                10.0, 0.995),
                          policy(&model, 17, cfg)
                    {
                        model.warmStart(offline);
                    }

                    photonic::WlState
                    nextState(const core::WindowObservation &obs) override
                    {
                        return policy.nextState(obs);
                    }

                    const char *name() const override
                    {
                        return "online-ml";
                    }
                };
                return std::make_unique<Holder>(trained.model, pol);
            }));

    TextTable t({"config", "thru (flits/cyc)", "thru vs 64WL",
                 "laser (W)", "savings"});
    for (const auto *r : {&base, &reactive, &offline, &online}) {
        t.addRow({r->name,
                  TextTable::num(r->avg.throughputFlitsPerCycle, 3),
                  TextTable::pct(r->avg.throughputFlitsPerCycle /
                                     base.avg.throughputFlitsPerCycle -
                                 1.0),
                  TextTable::num(r->avg.laserPowerW, 3),
                  TextTable::pct(1.0 - r->avg.laserPowerW /
                                           base.avg.laserPowerW)});
    }
    bench::emit(t);
    std::cout
        << "\nReading the result: online refinement moves along the\n"
           "power/throughput frontier rather than dominating the offline\n"
           "point — it adapts toward the demand it observes, which in a\n"
           "closed loop is partially shaped by its own throttling.  The\n"
           "trainOnlyUnthrottled guard (see ml/online_ridge.hpp) bounds\n"
           "that feedback; the residual bias is the online analogue of\n"
           "the label-contamination issue the paper raises for the\n"
           "buffer-utilization label.\n";
    return 0;
}
