/**
 * @file
 * Ablation: the ML label choice.  The paper predicts *injected packets*
 * rather than buffer utilisation because utilisation depends on the
 * wavelength state itself (Section IV-A).  This bench trains one model
 * per label on data collected under random wavelength states and
 * compares how well each predicts under a shifted (policy-driven) state
 * distribution.
 */

#include <memory>

#include "bench_common.hpp"
#include "core/network.hpp"
#include "ml/collector.hpp"
#include "photonic/power_model.hpp"

using namespace pearl;

namespace {

ml::Dataset
collectWith(const traffic::BenchmarkPair &pair, core::PowerPolicy &policy,
            ml::LabelKind label, std::uint64_t rw, std::uint64_t cycles,
            std::uint64_t seed)
{
    core::PearlConfig cfg;
    cfg.reservationWindow = rw;
    photonic::PowerModel power;
    core::PearlNetwork net(cfg, power, core::DbaConfig{}, &policy);
    ml::WindowDatasetCollector collector(net.numNodes(), cfg.l3Node,
                                         label);
    net.setWindowCollector(collector.callback());
    core::SystemConfig sys;
    sys.seed = seed;
    core::HeteroSystem system(
        net, pair, sys, [&net](int n) { return &net.telemetryOf(n); });
    system.run(cycles);
    return collector.takeDataset();
}

} // namespace

int
main()
{
    bench::banner("Ablation — ML label: injected packets vs buffer "
                  "utilization",
                  "Section IV-A label-choice discussion");

    traffic::BenchmarkSuite suite;
    const std::uint64_t rw = 500;
    const std::uint64_t cycles = bench::envU64("PEARL_BENCH_TRAIN", 30000);

    auto train_pairs = suite.trainingPairs();
    train_pairs.resize(6); // one row per training CPU benchmark suffices
    auto test_pairs = bench::testPairs(suite);

    TextTable t({"label", "train NRMSE (random states)",
                 "test NRMSE (policy states)"});
    for (auto label : {ml::LabelKind::InjectedPackets,
                       ml::LabelKind::BufferUtilization}) {
        // Train under random states.
        core::RandomPolicy random_policy(Rng(42), false);
        ml::Dataset train;
        std::uint64_t seed = 10;
        for (const auto &pair : train_pairs) {
            train.append(collectWith(pair, random_policy, label, rw,
                                     cycles, ++seed));
        }
        ml::RidgeRegression model;
        model.fit(train, 1.0);
        const double train_nrmse =
            ml::nrmseFit(train.labels, model.predictAll(train));

        // Test under a *fixed-state* policy: a distribution shift the
        // wavelength-dependent label suffers from.
        core::StaticPolicy low(photonic::WlState::WL16);
        ml::Dataset test;
        for (const auto &pair : test_pairs) {
            test.append(
                collectWith(pair, low, label, rw, cycles, ++seed));
        }
        const double test_nrmse =
            ml::nrmseFit(test.labels, model.predictAll(test));

        t.addRow({label == ml::LabelKind::InjectedPackets
                      ? "injected packets (paper)"
                      : "buffer utilization (rejected)",
                  TextTable::num(train_nrmse, 3),
                  TextTable::num(test_nrmse, 3)});
    }
    bench::emit(t);
    std::cout
        << "\nReading the result: the paper argues the injected-packet\n"
           "label is robust because cores 'try to inject regardless of\n"
           "the laser power state'.  That holds for trace-driven\n"
           "injection; in this closed-loop system the packets a router\n"
           "*accepts* per window shrink when a low state backpressures\n"
           "the buffers, so the injected-packet label also shifts with\n"
           "the state distribution.  Whichever label scores worse under\n"
           "the shift here, the control-theoretic argument for the\n"
           "packet label stands: the occupancy label saturates at full\n"
           "buffers and cannot distinguish demand beyond capacity.\n";
    return 0;
}
