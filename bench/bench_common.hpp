/**
 * @file
 * Shared infrastructure for the figure/table reproduction benches.
 *
 * Every bench binary regenerates one table or figure of the paper.  Run
 * lengths and pair counts are environment-tunable so a quick smoke run
 * is possible:
 *   PEARL_BENCH_CYCLES   measurement cycles per run   (default 60000)
 *   PEARL_BENCH_WARMUP   warmup cycles per run        (default 10000)
 *   PEARL_BENCH_PAIRS    test pairs to use, 0 = all   (default 0)
 *   PEARL_BENCH_TRAIN    training cycles per pair     (default 30000)
 *   PEARL_BENCH_TRAIN_PAIRS  training pairs, 0 = all  (default 0)
 *   PEARL_BENCH_CSV      also print CSV               (default 0)
 *   PEARL_THREADS        shared engine thread budget (sweep
 *                        workers x step lanes); 1 = serial
 *                        (default: hardware concurrency)
 *   PEARL_TRACE          per-window event tracing     (default 0)
 *   PEARL_TRACE_PATH     trace file stem (".jsonl" -> JSONL backend,
 *                        else Chrome trace; one file per sweep job)
 *   PEARL_METRICS_DUMP   append canonical RunMetrics CSV rows here
 *
 * The (config x pair) grids run through the `metrics::Runner` facade
 * (parallel sweep engine underneath), so they scale with cores while
 * staying bit-identical to a serial run (each job's seed is derived
 * from (base seed, job index), never from scheduling order).
 *
 * Trained ridge models are cached as pearl_ml_rw<RW>.model in the
 * working directory so the figure benches that share a model do not
 * retrain; in-process the load goes through the mutex-guarded
 * `ml::ModelCache`, so concurrent sweep jobs cannot retrain or race on
 * the file.
 */

#ifndef PEARL_BENCH_COMMON_HPP
#define PEARL_BENCH_COMMON_HPP

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <sys/resource.h>
#include <vector>

#include "common/env.hpp"
#include "common/table.hpp"
#include "metrics/experiment.hpp"
#include "metrics/runner.hpp"
#include "metrics/sweep.hpp"
#include "ml/model_cache.hpp"
#include "ml/pipeline.hpp"
#include "ml/policy.hpp"
#include "traffic/suite.hpp"

namespace pearl {
namespace bench {

inline std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    return pearl::envU64(name, fallback);
}

/** Common run options from the environment. */
inline metrics::RunOptions
runOptions()
{
    metrics::RunOptions opts;
    opts.measureCycles = envU64("PEARL_BENCH_CYCLES", 60000);
    opts.warmupCycles = envU64("PEARL_BENCH_WARMUP", 10000);
    return opts;
}

/** Process CPU time (user + system, all threads).  Immune to VM steal
 *  and host contention, which swing wall clock on shared boxes by tens
 *  of percent; the host-throughput benches clock on this. */
inline double
cpuSeconds()
{
    rusage ru;
    getrusage(RUSAGE_SELF, &ru);
    return double(ru.ru_utime.tv_sec) + double(ru.ru_utime.tv_usec) * 1e-6 +
           double(ru.ru_stime.tv_sec) + double(ru.ru_stime.tv_usec) * 1e-6;
}

/** The benchmark pairs a figure aggregates over. */
inline std::vector<traffic::BenchmarkPair>
testPairs(const traffic::BenchmarkSuite &suite)
{
    auto pairs = suite.testPairs();
    const auto limit = envU64("PEARL_BENCH_PAIRS", 0);
    if (limit > 0 && pairs.size() > limit)
        pairs.resize(limit);
    return pairs;
}

/** Emit the table, optionally with a CSV copy. */
inline void
emit(const TextTable &table)
{
    table.print(std::cout);
    if (envU64("PEARL_BENCH_CSV", 0)) {
        std::cout << "\n--- csv ---\n";
        table.printCsv(std::cout);
    }
}

/** Print the standard bench banner. */
inline void
banner(const std::string &what, const std::string &paper_ref)
{
    std::cout << "== PEARL reproduction: " << what << " ==\n"
              << "   (paper reference: " << paper_ref << ")\n\n";
}

/**
 * Accumulates the sweep summaries of a bench process so the bench can
 * print one footer with the parallel speedup (tracked by the
 * BENCH_*.json trajectories).
 */
class SweepTracker
{
  public:
    static SweepTracker &
    instance()
    {
        static SweepTracker tracker;
        return tracker;
    }

    void
    add(const metrics::SweepSummary &s)
    {
        total_.jobs += s.jobs;
        total_.failed += s.failed;
        total_.skipped += s.skipped;
        total_.threads = std::max(total_.threads, s.threads);
        total_.wallSeconds += s.wallSeconds;
        total_.aggregateJobSeconds += s.aggregateJobSeconds;
        total_.phaseSeconds.buildSeconds += s.phaseSeconds.buildSeconds;
        total_.phaseSeconds.warmupSeconds +=
            s.phaseSeconds.warmupSeconds;
        total_.phaseSeconds.runSeconds += s.phaseSeconds.runSeconds;
        total_.phaseSeconds.collectSeconds +=
            s.phaseSeconds.collectSeconds;
        ++sweeps_;
    }

    /** The per-sweep summary footer. */
    void
    print(std::ostream &os) const
    {
        if (total_.jobs == 0)
            return;
        os << "\n[sweep] " << total_.jobs << " jobs in " << sweeps_
           << " sweep" << (sweeps_ == 1 ? "" : "s") << " on "
           << total_.threads << " thread"
           << (total_.threads == 1 ? "" : "s") << ": wall "
           << TextTable::num(total_.wallSeconds, 2) << " s, aggregate "
           << TextTable::num(total_.aggregateJobSeconds, 2)
           << " s, speedup " << TextTable::num(total_.speedup(), 2)
           << "x\n";
        const metrics::PhaseTimings &p = total_.phaseSeconds;
        if (p.totalSeconds() > 0.0) {
            os << "[sweep] phases (aggregate): build "
               << TextTable::num(p.buildSeconds, 2) << " s, warmup "
               << TextTable::num(p.warmupSeconds, 2) << " s, run "
               << TextTable::num(p.runSeconds, 2) << " s, collect "
               << TextTable::num(p.collectSeconds, 2) << " s\n";
        }
    }

  private:
    metrics::SweepSummary total_;
    std::size_t sweeps_ = 0;
};

/** Print the accumulated sweep footer (jobs, threads, wall vs
 *  aggregate time, speedup). */
inline void
sweepFooter()
{
    SweepTracker::instance().print(std::cout);
}

/**
 * Run a spec grid through the metrics::Runner facade (environment
 * configured: trace/dump knobs + PEARL_THREADS), feed the footer
 * tracker, and return the metrics in submission order (fatal on
 * failure).
 */
inline std::vector<metrics::RunMetrics>
runGrid(const std::vector<metrics::RunSpec> &specs,
        std::uint64_t base_seed = 100)
{
    metrics::RunnerOptions ro = metrics::RunnerOptions::fromEnv();
    ro.sweep.baseSeed = base_seed;
    const metrics::SweepResult result =
        metrics::Runner(ro).sweep(specs);
    SweepTracker::instance().add(result.summary);
    if (const metrics::SweepJobResult *bad = result.firstError()) {
        fatal("sweep job '", bad->metrics.configName, "/",
              bad->metrics.pairLabel, "' failed: ", bad->error);
    }
    std::vector<metrics::RunMetrics> runs;
    runs.reserve(result.jobs.size());
    for (const auto &j : result.jobs)
        runs.push_back(j.metrics);
    return runs;
}

/**
 * Train (or load from cache) the ridge model for a reservation window.
 * The pipeline mirrors Section IV-A: random-state first pass, optional
 * policy-driven second pass, lambda tuned on the validation pairs.
 * Load-once: concurrent callers share one entry via ml::ModelCache.
 */
inline const ml::PipelineResult &
trainedModel(const traffic::BenchmarkSuite &suite, std::uint64_t rw,
             bool verbose = true)
{
    return ml::ModelCache::instance().get(rw, [&suite, rw, verbose] {
        const std::string path =
            "pearl_ml_rw" + std::to_string(rw) + ".model";

        ml::PipelineConfig cfg;
        cfg.reservationWindow = rw;
        cfg.simCycles = envU64("PEARL_BENCH_TRAIN", 30000);
        cfg.maxTrainPairs =
            static_cast<int>(envU64("PEARL_BENCH_TRAIN_PAIRS", 0));
        cfg.secondPass = true;

        ml::PipelineResult result;
        {
            std::ifstream in(path);
            if (in && result.model.load(in)) {
                if (verbose) {
                    std::cout << "[ml] loaded cached model " << path
                              << " (lambda " << result.model.lambda()
                              << ")\n";
                }
                result.bestLambda = result.model.lambda();
                return result;
            }
        }

        if (verbose) {
            std::cout << "[ml] training ridge model for RW" << rw
                      << " (cache miss; this runs the 36-pair "
                         "pipeline)\n";
        }
        ml::TrainingPipeline pipeline(suite, cfg);
        result = pipeline.run();
        std::ofstream out(path);
        result.model.save(out);
        if (verbose) {
            std::cout << "[ml] trained: lambda " << result.bestLambda
                      << ", validation NRMSE "
                      << TextTable::num(result.validationNrmse, 3)
                      << ", " << result.trainSamples
                      << " samples -> cached to " << path << "\n";
        }
        return result;
    });
}

/** Run a PEARL configuration over all test pairs (one Runner spec per
 *  pair, executed in parallel) and return per-pair metrics. */
template <typename MakePolicy>
std::vector<metrics::RunMetrics>
runPearlGrid(const traffic::BenchmarkSuite &suite,
             const std::string &name, const core::PearlConfig &net_cfg,
             const core::DbaConfig &dba, MakePolicy &&make_policy)
{
    return runGrid(metrics::pearlGrid(
        name, testPairs(suite), net_cfg, dba,
        std::forward<MakePolicy>(make_policy), runOptions()));
}

/** Run the CMESH baseline over all test pairs through the Runner
 *  facade (same derived seeds as the PEARL configs). */
inline std::vector<metrics::RunMetrics>
runCmeshGrid(const traffic::BenchmarkSuite &suite,
             const std::string &name,
             const electrical::CmeshConfig &mesh)
{
    return runGrid(
        metrics::cmeshGrid(name, testPairs(suite), mesh, runOptions()));
}

} // namespace bench
} // namespace pearl

#endif // PEARL_BENCH_COMMON_HPP
