/**
 * @file
 * Shared infrastructure for the figure/table reproduction benches.
 *
 * Every bench binary regenerates one table or figure of the paper.  Run
 * lengths and pair counts are environment-tunable so a quick smoke run
 * is possible:
 *   PEARL_BENCH_CYCLES   measurement cycles per run   (default 60000)
 *   PEARL_BENCH_WARMUP   warmup cycles per run        (default 10000)
 *   PEARL_BENCH_PAIRS    test pairs to use, 0 = all   (default 0)
 *   PEARL_BENCH_TRAIN    training cycles per pair     (default 30000)
 *   PEARL_BENCH_TRAIN_PAIRS  training pairs, 0 = all  (default 0)
 *   PEARL_BENCH_CSV      also print CSV               (default 0)
 *
 * Trained ridge models are cached as pearl_ml_rw<RW>.model in the
 * working directory so the figure benches that share a model do not
 * retrain.
 */

#ifndef PEARL_BENCH_COMMON_HPP
#define PEARL_BENCH_COMMON_HPP

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "metrics/experiment.hpp"
#include "ml/pipeline.hpp"
#include "ml/policy.hpp"
#include "traffic/suite.hpp"

namespace pearl {
namespace bench {

inline std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *v = std::getenv(name);
    return v ? static_cast<std::uint64_t>(std::atoll(v)) : fallback;
}

/** Common run options from the environment. */
inline metrics::RunOptions
runOptions()
{
    metrics::RunOptions opts;
    opts.measureCycles = envU64("PEARL_BENCH_CYCLES", 60000);
    opts.warmupCycles = envU64("PEARL_BENCH_WARMUP", 10000);
    return opts;
}

/** The benchmark pairs a figure aggregates over. */
inline std::vector<traffic::BenchmarkPair>
testPairs(const traffic::BenchmarkSuite &suite)
{
    auto pairs = suite.testPairs();
    const auto limit = envU64("PEARL_BENCH_PAIRS", 0);
    if (limit > 0 && pairs.size() > limit)
        pairs.resize(limit);
    return pairs;
}

/** Emit the table, optionally with a CSV copy. */
inline void
emit(const TextTable &table)
{
    table.print(std::cout);
    if (envU64("PEARL_BENCH_CSV", 0)) {
        std::cout << "\n--- csv ---\n";
        table.printCsv(std::cout);
    }
}

/** Print the standard bench banner. */
inline void
banner(const std::string &what, const std::string &paper_ref)
{
    std::cout << "== PEARL reproduction: " << what << " ==\n"
              << "   (paper reference: " << paper_ref << ")\n\n";
}

/**
 * Train (or load from cache) the ridge model for a reservation window.
 * The pipeline mirrors Section IV-A: random-state first pass, optional
 * policy-driven second pass, lambda tuned on the validation pairs.
 */
inline ml::PipelineResult
trainedModel(const traffic::BenchmarkSuite &suite, std::uint64_t rw,
             bool verbose = true)
{
    const std::string path =
        "pearl_ml_rw" + std::to_string(rw) + ".model";

    ml::PipelineConfig cfg;
    cfg.reservationWindow = rw;
    cfg.simCycles = envU64("PEARL_BENCH_TRAIN", 30000);
    cfg.maxTrainPairs =
        static_cast<int>(envU64("PEARL_BENCH_TRAIN_PAIRS", 0));
    cfg.secondPass = true;

    ml::PipelineResult result;
    {
        std::ifstream in(path);
        if (in && result.model.load(in)) {
            if (verbose) {
                std::cout << "[ml] loaded cached model " << path
                          << " (lambda " << result.model.lambda()
                          << ")\n";
            }
            result.bestLambda = result.model.lambda();
            return result;
        }
    }

    if (verbose) {
        std::cout << "[ml] training ridge model for RW" << rw
                  << " (cache miss; this runs the 36-pair pipeline)\n";
    }
    ml::TrainingPipeline pipeline(suite, cfg);
    result = pipeline.run();
    std::ofstream out(path);
    result.model.save(out);
    if (verbose) {
        std::cout << "[ml] trained: lambda " << result.bestLambda
                  << ", validation NRMSE "
                  << TextTable::num(result.validationNrmse, 3) << ", "
                  << result.trainSamples << " samples -> cached to "
                  << path << "\n";
    }
    return result;
}

/** Run a PEARL configuration over all test pairs and return per-pair
 *  metrics plus the average row. */
template <typename MakePolicy>
std::vector<metrics::RunMetrics>
runPearlConfig(const traffic::BenchmarkSuite &suite,
               const std::string &name, const core::PearlConfig &net_cfg,
               const core::DbaConfig &dba, MakePolicy &&make_policy)
{
    const auto opts = runOptions();
    std::vector<metrics::RunMetrics> runs;
    std::uint64_t seed = 100;
    for (const auto &pair : testPairs(suite)) {
        auto policy = make_policy();
        metrics::RunOptions o = opts;
        o.seed = ++seed;
        runs.push_back(
            metrics::runPearl(pair, net_cfg, dba, *policy, o, name));
    }
    return runs;
}

} // namespace bench
} // namespace pearl

#endif // PEARL_BENCH_COMMON_HPP
