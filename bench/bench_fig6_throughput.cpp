/**
 * @file
 * Regenerates Figure 6: throughput of the power-scaling architectures
 * with the 8WL low state, relative to the 64WL baseline.
 *
 * Expected shape (paper): larger reservation windows preserve more
 * throughput for the ML policy (ML RW2000 ~0.3% loss); throughput
 * losses stay within 0-14% across all configurations.
 */

#include "bench_powerscale.hpp"

using namespace pearl;

int
main()
{
    bench::banner("Figure 6 — Throughput of power-scaling architectures",
                  "Figure 6, Section IV-C (second comparison)");

    traffic::BenchmarkSuite suite;
    const auto results = bench::runPowerScalingConfigs(suite);
    const auto &base = bench::baselineOf(results);

    TextTable t({"config", "thru (flits/cyc)", "vs 64WL",
                 "paper loss"});
    const char *paper_loss[] = {"baseline", "1.3%", "8%",
                                "14%",      "14%",  "0.3%"};
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        t.addRow({r.name,
                  TextTable::num(r.avg.throughputFlitsPerCycle, 3),
                  TextTable::pct(r.avg.throughputFlitsPerCycle /
                                     base.throughputFlitsPerCycle -
                                 1.0),
                  i < 6 ? paper_loss[i] : ""});
    }
    bench::emit(t);

    std::cout << "\nPer-pair throughput (flits/cycle):\n";
    TextTable p({"pair", "64WL", "DynRW500", "DynRW2000", "MLRW500",
                 "MLRW500no8", "MLRW2000"});
    const std::size_t pairs = results.front().runs.size();
    for (std::size_t i = 0; i < pairs; ++i) {
        std::vector<std::string> row{
            results.front().runs[i].pairLabel};
        for (const auto &r : results) {
            row.push_back(TextTable::num(
                r.runs[i].throughputFlitsPerCycle, 3));
        }
        p.addRow(row);
    }
    bench::emit(p);
    bench::sweepFooter();
    return 0;
}
