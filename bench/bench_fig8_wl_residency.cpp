/**
 * @file
 * Regenerates Figure 8: the fraction of simulation time spent in each
 * wavelength state under ML-based power scaling, for RW500 (a) and
 * RW2000 (b).
 *
 * Expected shape (paper): a spread across all five states, with RW2000
 * spending just under 30% of the time in the 64WL state (which is why
 * its throughput loss is negligible).
 */

#include "bench_powerscale.hpp"

using namespace pearl;

int
main()
{
    bench::banner("Figure 8 — Wavelength-state residency under ML power "
                  "scaling",
                  "Figure 8(a)/(b), Section IV-C");

    traffic::BenchmarkSuite suite;
    bench::PowerScaleSelection sel;
    sel.baseline64 = false;
    sel.dynRw500 = false;
    sel.dynRw2000 = false;
    sel.mlRw500No8 = false;
    const auto results = bench::runPowerScalingConfigs(suite, sel);

    for (const auto &r : results) {
        std::cout << r.name << " (average over "
                  << r.runs.size() << " test pairs):\n";
        TextTable t({"state", "time share"});
        for (int s = photonic::kNumWlStates - 1; s >= 0; --s) {
            t.addRow({photonic::toString(photonic::stateFromIndex(s)),
                      TextTable::pct(
                          r.avg.residency[static_cast<std::size_t>(s)])});
        }
        bench::emit(t);
        std::cout << "\n";
    }

    std::cout << "Per-pair residency (8/16/32/48/64):\n";
    TextTable p({"pair", "config", "8WL", "16WL", "32WL", "48WL",
                 "64WL"});
    for (const auto &r : results) {
        for (const auto &m : r.runs) {
            p.addRow({m.pairLabel, r.name,
                      TextTable::pct(m.residency[0]),
                      TextTable::pct(m.residency[1]),
                      TextTable::pct(m.residency[2]),
                      TextTable::pct(m.residency[3]),
                      TextTable::pct(m.residency[4])});
        }
    }
    bench::emit(p);
    bench::sweepFooter();
    return 0;
}
