/**
 * @file
 * Regenerates Table II: the area overhead of the PEARL components,
 * including the dynamic-allocation and machine-learning hardware.
 */

#include "bench_common.hpp"
#include "core/area_model.hpp"

using namespace pearl;

int
main()
{
    bench::banner("Table II — Area overhead for PEARL",
                  "Table II, references [48][49][50]");

    core::AreaModel area;
    TextTable t({"Photonic and Electronic Component", "Area"});
    t.addRow({"Cluster (CPU, GPU and L1 cache)",
              TextTable::num(area.clusterMm2, 1) + " mm^2"});
    t.addRow({"L2 Cache per Cluster",
              TextTable::num(area.l2PerClusterMm2, 1) + " mm^2"});
    t.addRow({"Optical Components (MRRs and Waveguides)",
              TextTable::num(area.opticalComponentsMm2, 1) + " mm^2"});
    t.addRow({"Waveguide Width",
              TextTable::num(area.waveguideWidthUm, 2) + " um"});
    t.addRow({"MRR Diameter",
              TextTable::num(area.mrrDiameterUm, 1) + " um"});
    t.addRow({"L3 Cache", TextTable::num(area.l3Mm2, 1) + " mm^2"});
    t.addRow({"Router", TextTable::num(area.routerMm2, 3) + " mm^2"});
    t.addRow({"On-Chip laser per router",
              TextTable::num(area.laserPerRouterMm2, 3) + " mm^2"});
    t.addRow({"Dynamic Allocation",
              TextTable::num(area.dynamicAllocationMm2, 3) + " mm^2"});
    t.addRow({"Machine Learning",
              TextTable::num(area.machineLearningMm2, 3) + " mm^2"});
    bench::emit(t);

    std::cout << "\nDerived totals:\n";
    TextTable d({"quantity", "value"});
    d.addRow({"Total chip area (16 clusters, 17 routers)",
              TextTable::num(area.totalMm2(), 1) + " mm^2"});
    d.addRow({"Adaptive (DBA+ML) overhead",
              TextTable::pct(area.adaptiveOverheadFraction(), 3)});
    bench::emit(d);
    return 0;
}
