/**
 * @file
 * Regenerates Table IV (the benchmarks used for testing the ML model)
 * and documents the full synthetic-profile suite standing in for the
 * PARSEC / SPLASH2 / OpenCL SDK programs (see DESIGN.md).
 */

#include "bench_common.hpp"

using namespace pearl;

namespace {

void
profileTable(const std::vector<traffic::BenchmarkProfile> &profiles,
             const std::string &title)
{
    std::cout << title << "\n";
    TextTable t({"abbrev", "benchmark name", "rate on/off", "on-frac",
                 "ws lines", "wr", "shared", "stream"});
    for (const auto &p : profiles) {
        t.addRow({p.abbrev, p.name,
                  TextTable::num(p.accessRateOn, 3) + "/" +
                      TextTable::num(p.accessRateOff, 3),
                  TextTable::num(p.onFraction(), 2),
                  std::to_string(p.workingSetLines),
                  TextTable::num(p.writeFraction, 2),
                  TextTable::num(p.sharedFraction, 2),
                  TextTable::num(p.streamFraction, 2)});
    }
    bench::emit(t);
    std::cout << "\n";
}

} // namespace

int
main()
{
    bench::banner("Table IV — Benchmarks used for testing ML",
                  "Table IV + Section IV-A splits");

    traffic::BenchmarkSuite suite;

    std::cout << "Test benchmarks (Table IV):\n";
    TextTable t({"Core Type", "Abbreviation", "Benchmark Name"});
    for (const char *a : {"FA", "fmm", "Rad", "x264"})
        t.addRow({"CPU", a, suite.find(a).name});
    for (const char *a : {"DCT", "Dwrt", "QRS", "Reduc"})
        t.addRow({"GPU", a, suite.find(a).name});
    bench::emit(t);
    std::cout << "\n";

    std::cout << "Splits: " << suite.trainingPairs().size()
              << " training pairs (6 CPU x 6 GPU), "
              << suite.validationPairs().size()
              << " validation pairs (2 x 2), " << suite.testPairs().size()
              << " test pairs (4 x 4)\n\n";

    profileTable(suite.cpuBenchmarks(), "All CPU profiles:");
    profileTable(suite.gpuBenchmarks(), "All GPU profiles:");
    return 0;
}
