/**
 * @file
 * Ablation: reservation-assisted SWMR (PEARL's choice) vs token-ring
 * MWSR (Corona-style, Related Work Section II-A).
 *
 * The paper picks R-SWMR "to reduce the hardware complexity and control
 * while minimizing the latency"; this bench quantifies the claim by
 * driving both crossbars with identical synthetic traffic and comparing
 * latency across loads, plus the MWSR's measured token-arbitration wait.
 */

#include "bench_common.hpp"
#include "core/mwsr_network.hpp"
#include "traffic/synthetic.hpp"

using namespace pearl;

int
main()
{
    bench::banner("Ablation — R-SWMR vs token-arbitrated MWSR",
                  "Section II-A / III-A3 design rationale");

    photonic::PowerModel power;
    const std::vector<double> loads = {0.02, 0.05, 0.1, 0.2, 0.4};

    TextTable t({"load (flits/src/cyc)", "SWMR lat", "MWSR lat",
                 "MWSR token wait", "SWMR thru", "MWSR thru"});
    for (double load : loads) {
        traffic::SyntheticConfig cfg;
        cfg.flitsPerSourcePerCycle = load;
        const sim::Cycle cycles = 20000;

        core::StaticPolicy policy(photonic::WlState::WL64);
        core::PearlNetwork swmr(core::PearlConfig{}, power,
                                core::DbaConfig{}, &policy);
        traffic::SyntheticInjector inj_a(cfg);
        for (sim::Cycle i = 0; i < cycles; ++i)
            inj_a.step(swmr);

        core::MwsrNetwork mwsr(core::MwsrConfig{}, power);
        traffic::SyntheticInjector inj_b(cfg);
        for (sim::Cycle i = 0; i < cycles; ++i)
            inj_b.step(mwsr);

        t.addRow({TextTable::num(load, 2),
                  TextTable::num(swmr.stats().avgLatency(), 1),
                  TextTable::num(mwsr.stats().avgLatency(), 1),
                  TextTable::num(mwsr.avgTokenWaitCycles(), 1),
                  TextTable::num(
                      swmr.stats().throughputFlitsPerCycle(cycles), 2),
                  TextTable::num(
                      mwsr.stats().throughputFlitsPerCycle(cycles), 2)});
    }
    bench::emit(t);
    std::cout << "\nExpected shape: R-SWMR wins latency at light-to-"
                 "moderate load because writers never wait for a token; "
                 "MWSR serialises writers per destination.\n";
    return 0;
}
