/**
 * @file
 * Execution-engine throughput bench, three sections:
 *
 *  - PEARL: the deterministic sharded PearlNetwork::step() at 1/2/4/8
 *    worker lanes on 16-, 64- and 128-cluster chips (FA/DCT pair,
 *    static WL64 policy, pinned seed).
 *  - CMESH: the wavefront-parallel electrical baseline
 *    (electrical::CmeshNetwork, default 4x4 mesh) at the same lane
 *    counts.
 *  - Sweep x step matrix: an 8-job grid swept under shared
 *    PEARL_THREADS budgets of 2/4/8/16, so min(C, 8) job workers each
 *    step floor(C / W) lanes leased from one engine.
 *
 * Two clocks per run: process CPU time (getrusage, covers all worker
 * threads — the total compute burned) and monotonic wall time (what a
 * user waits; this is where lanes > 1 can win, and only up to the
 * physical core count).  Each combination runs PEARL_BENCH_REPS times
 * and keeps the best wall rep.  The bench also byte-compares every
 * multi-lane / pooled run's canonical CSV rows against the serial rows
 * of the same shape — a rep that is not bit-identical is a fatal
 * error, so the committed numbers can never come from a diverged
 * simulation.
 *
 * Results land in BENCH_parstep.json together with host_cpus and the
 * PEARL_PIN state: the speedup column is only meaningful relative to
 * the recorded core count (on a 1-core host every extra lane is pure
 * scheduling overhead in wall time, while output stays bit-identical —
 * that is the documented expectation, not a failure).
 *
 * Knobs: PEARL_BENCH_CYCLES (20000), PEARL_BENCH_WARMUP (4000),
 * PEARL_BENCH_REPS (3), PEARL_BENCH_JSON (BENCH_parstep.json),
 * PEARL_PIN (recorded and honoured by the leased pools).
 */

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/topology.hpp"
#include "metrics/csv.hpp"
#include "metrics/runner.hpp"
#include "sim/worker_pool.hpp"

namespace pearl {
namespace bench {
namespace {

constexpr int kClusterCounts[] = {16, 64, 128};
constexpr unsigned kThreadCounts[] = {1, 2, 4, 8};
constexpr std::uint64_t kSeed = 1;

struct ParstepResult
{
    std::string fabric = "pearl";
    int clusters = 0;
    unsigned threads = 0;
    double cpuSec = 0.0;
    double wallSec = 0.0;
    double cyclesPerSecWall = 0.0;
    double cyclesPerSecCpu = 0.0;
    double speedupVsSerialWall = 0.0;
    std::uint64_t deliveredPackets = 0;
    bool identicalToSerial = false;
};

/** One sweep of the 8-job grid under a shared PEARL_THREADS budget. */
struct SweepMatrixResult
{
    unsigned budget = 0;  //!< PEARL_THREADS (0 = serial baseline)
    unsigned workers = 0; //!< job workers the runner actually used
    unsigned lanes = 0;   //!< step lanes leased per worker
    double cpuSec = 0.0;
    double wallSec = 0.0;
    bool identicalToSerial = false;
};

double
wallSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void
writeJson(const std::string &path, const std::vector<ParstepResult> &runs,
          const std::vector<SweepMatrixResult> &sweeps,
          std::uint64_t warmup, std::uint64_t cycles, std::uint64_t reps)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write ", path);
    out << "{\n"
        << "  \"bench\": \"parstep\",\n"
        << "  \"clock\": \"process_cpu_time + monotonic_wall\",\n"
        << "  \"pair\": \"FA/DCT\",\n"
        << "  \"seed\": " << kSeed << ",\n"
        << "  \"warmup_cycles\": " << warmup << ",\n"
        << "  \"measure_cycles\": " << cycles << ",\n"
        << "  \"reps\": " << reps << ",\n"
        << "  \"host_cpus\": " << std::thread::hardware_concurrency()
        << ",\n"
        << "  \"pinning\": "
        << (sim::lanePinningRequested() ? "true" : "false") << ",\n"
        << "  \"note\": \"wall speedup is bounded by host_cpus; on a "
           "1-core host extra lanes cost scheduling overhead while "
           "output stays bit-identical (identical_to_serial)\",\n"
        << "  \"results\": [\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const ParstepResult &r = runs[i];
        out << "    {\"fabric\": \"" << r.fabric << "\""
            << ", \"clusters\": " << r.clusters
            << ", \"threads\": " << r.threads
            << ", \"cpu_sec\": " << r.cpuSec
            << ", \"wall_sec\": " << r.wallSec
            << ", \"cycles_per_sec_wall\": " << r.cyclesPerSecWall
            << ", \"cycles_per_sec_cpu\": " << r.cyclesPerSecCpu
            << ", \"speedup_vs_serial_wall\": " << r.speedupVsSerialWall
            << ", \"delivered_packets\": " << r.deliveredPackets
            << ", \"identical_to_serial\": "
            << (r.identicalToSerial ? "true" : "false") << "}"
            << (i + 1 < runs.size() ? "," : "") << "\n";
    }
    out << "  ],\n"
        << "  \"sweep_matrix\": [\n";
    for (std::size_t i = 0; i < sweeps.size(); ++i) {
        const SweepMatrixResult &r = sweeps[i];
        out << "    {\"budget\": " << r.budget
            << ", \"workers\": " << r.workers
            << ", \"lanes\": " << r.lanes
            << ", \"cpu_sec\": " << r.cpuSec
            << ", \"wall_sec\": " << r.wallSec
            << ", \"identical_to_serial\": "
            << (r.identicalToSerial ? "true" : "false") << "}"
            << (i + 1 < sweeps.size() ? "," : "") << "\n";
    }
    out << "  ]\n"
        << "}\n";
}

/** Minimal self-check that the emitted file is sane JSON with live
 *  numbers — this is what the ctest smoke run asserts. */
void
validateJson(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot reopen ", path);
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    for (const char *key :
         {"\"bench\": \"parstep\"", "\"results\"", "\"host_cpus\"",
          "\"pinning\"", "\"fabric\": \"cmesh\"", "\"sweep_matrix\"",
          "\"cycles_per_sec_wall\"", "\"identical_to_serial\""}) {
        if (text.find(key) == std::string::npos)
            fatal(path, ": missing key ", key);
    }
    long depth = 0;
    for (char c : text) {
        if (c == '{' || c == '[')
            ++depth;
        else if (c == '}' || c == ']')
            --depth;
        if (depth < 0)
            fatal(path, ": unbalanced brackets");
    }
    if (depth != 0)
        fatal(path, ": unbalanced brackets");
    if (text.find("\"identical_to_serial\": false") != std::string::npos)
        fatal(path, ": a multi-lane run diverged from the serial row");
    if (text.find("\"delivered_packets\": 0,") != std::string::npos)
        fatal(path, ": a run delivered zero packets");
}

int
run()
{
    banner("parallel stepping — host throughput vs worker lanes",
           "simulator engineering; tracks the sharded step() path");

    const std::uint64_t cycles = envU64("PEARL_BENCH_CYCLES", 20000);
    const std::uint64_t warmup = envU64("PEARL_BENCH_WARMUP", 4000);
    const std::uint64_t reps = envU64("PEARL_BENCH_REPS", 3);
    const std::string json_path = []() {
        const char *p = std::getenv("PEARL_BENCH_JSON");
        return std::string(p ? p : "BENCH_parstep.json");
    }();

    traffic::BenchmarkSuite suite;
    const traffic::BenchmarkPair pair{suite.find("FA"),
                                      suite.find("DCT")};

    metrics::Runner runner;
    TextTable table({"fabric", "clusters", "threads", "wall s", "cpu s",
                     "cycles/s (wall)", "speedup", "identical"});
    std::vector<ParstepResult> results;

    // Benches one spec shape across kThreadCounts with the serial row
    // as the bit-identity reference, appending to table + results.
    auto benchSpec = [&](const std::string &fabric, int clusters,
                         metrics::RunSpec spec) {
        double serial_wall = 0.0;
        std::string serial_row;
        for (unsigned threads : kThreadCounts) {
            spec.options.stepThreads = threads;

            ParstepResult best;
            best.fabric = fabric;
            best.clusters = clusters;
            best.threads = threads;
            std::string row;
            for (std::uint64_t rep = 0; rep < reps; ++rep) {
                const double w0 = wallSeconds();
                const double c0 = cpuSeconds();
                const metrics::RunMetrics m = runner.run(spec);
                const double cpu = cpuSeconds() - c0;
                const double wall = wallSeconds() - w0;
                if (wall <= 0.0 || cpu <= 0.0 ||
                    m.deliveredPackets == 0)
                    fatal("degenerate rep at ", fabric, " ", clusters,
                          " clusters / ", threads, " threads");
                row = metrics::csvRow({m.pairLabel}, m);
                if (best.wallSec == 0.0 || wall < best.wallSec) {
                    best.wallSec = wall;
                    best.cpuSec = cpu;
                    best.cyclesPerSecWall =
                        double(warmup + cycles) / wall;
                    best.cyclesPerSecCpu = double(warmup + cycles) / cpu;
                    best.deliveredPackets = m.deliveredPackets;
                }
            }

            if (threads == 1) {
                serial_wall = best.wallSec;
                serial_row = row;
                best.identicalToSerial = true;
                best.speedupVsSerialWall = 1.0;
            } else {
                // Bit-identity gate: diverged numbers never get
                // committed as performance data.
                best.identicalToSerial = row == serial_row;
                if (!best.identicalToSerial)
                    fatal("canonical CSV row at ", fabric, " ",
                          clusters, " clusters / ", threads,
                          " threads differs from the serial row");
                best.speedupVsSerialWall = serial_wall / best.wallSec;
            }

            table.addRow({fabric, std::to_string(clusters),
                          std::to_string(threads),
                          TextTable::num(best.wallSec, 3),
                          TextTable::num(best.cpuSec, 3),
                          TextTable::num(best.cyclesPerSecWall, 0),
                          TextTable::num(best.speedupVsSerialWall, 2) +
                              "x",
                          best.identicalToSerial ? "yes" : "NO"});
            results.push_back(best);
        }
    };

    for (int clusters : kClusterCounts) {
        core::TopologySpec topo;
        topo.clusters = clusters;

        metrics::RunSpec spec;
        spec.configName = "parstep" + std::to_string(clusters);
        spec.pair = pair;
        spec.options.warmupCycles = warmup;
        spec.options.measureCycles = cycles;
        spec.options.system = core::makeSystemConfig(topo);
        spec.pearl = topo.pearlConfig();
        spec.makePolicy = [] {
            return std::make_unique<core::StaticPolicy>(
                photonic::WlState::WL64);
        };
        spec.explicitSeed = kSeed;
        benchSpec("pearl", clusters, std::move(spec));
    }

    {
        // Electrical baseline: the default 4x4 CMESH through the
        // wavefront-parallel stepper, same bit-identity gate.
        metrics::RunSpec spec;
        spec.configName = "parstep_cmesh";
        spec.pair = pair;
        spec.fabric = metrics::RunSpec::Fabric::Cmesh;
        spec.options.warmupCycles = warmup;
        spec.options.measureCycles = cycles;
        spec.explicitSeed = kSeed;
        benchSpec("cmesh", 16, std::move(spec));
    }

    emit(table);

    // Sweep x step matrix: the same 8-job grid swept serially and
    // under shared budgets, each job's canonical row compared byte
    // for byte against the serial sweep.
    std::vector<SweepMatrixResult> sweeps;
    {
        std::vector<metrics::RunSpec> jobs;
        for (int i = 0; i < 8; ++i) {
            metrics::RunSpec job;
            job.configName = "matrix";
            job.pair = pair;
            job.options.warmupCycles = warmup / 4;
            job.options.measureCycles = cycles / 4;
            job.pearl.reservationWindow = 300 + 25 * i;
            job.makePolicy = [] {
                return std::make_unique<core::StaticPolicy>(
                    photonic::WlState::WL64);
            };
            jobs.push_back(std::move(job));
        }

        const char *saved_budget = std::getenv("PEARL_THREADS");
        const std::string saved =
            saved_budget ? std::string(saved_budget) : std::string();

        auto sweepRows = [&jobs](std::vector<std::string> &rows) {
            metrics::SweepOptions so;
            so.baseSeed = kSeed;
            const auto runs = metrics::SweepRunner(so)
                                  .run(jobs)
                                  .metricsOrThrow();
            rows.clear();
            for (const metrics::RunMetrics &m : runs)
                rows.push_back(metrics::csvRow({m.pairLabel}, m));
        };

        TextTable sweep_table({"budget", "workers", "lanes", "wall s",
                               "cpu s", "identical"});
        std::vector<std::string> serial_rows;
        ::unsetenv("PEARL_THREADS");
        {
            SweepMatrixResult base;
            base.budget = 0;
            base.workers = 1;
            base.lanes = 1;
            metrics::SweepOptions so;
            so.baseSeed = kSeed;
            so.threads = 1;
            const double w0 = wallSeconds();
            const double c0 = cpuSeconds();
            const auto runs =
                metrics::SweepRunner(so).run(jobs).metricsOrThrow();
            base.cpuSec = cpuSeconds() - c0;
            base.wallSec = wallSeconds() - w0;
            base.identicalToSerial = true;
            for (const metrics::RunMetrics &m : runs)
                serial_rows.push_back(metrics::csvRow({m.pairLabel}, m));
            sweep_table.addRow({"serial", "1", "1",
                                TextTable::num(base.wallSec, 3),
                                TextTable::num(base.cpuSec, 3), "yes"});
            sweeps.push_back(base);
        }

        for (unsigned budget : {2u, 4u, 8u, 16u}) {
            ::setenv("PEARL_THREADS", std::to_string(budget).c_str(), 1);
            SweepMatrixResult r;
            r.budget = budget;
            r.workers = budget < 8 ? budget : 8;
            r.lanes = budget / r.workers > 0 ? budget / r.workers : 1;
            std::vector<std::string> rows;
            const double w0 = wallSeconds();
            const double c0 = cpuSeconds();
            sweepRows(rows);
            r.cpuSec = cpuSeconds() - c0;
            r.wallSec = wallSeconds() - w0;
            r.identicalToSerial = rows == serial_rows;
            if (!r.identicalToSerial)
                fatal("sweep rows under PEARL_THREADS=", budget,
                      " differ from the serial sweep");
            sweep_table.addRow({std::to_string(budget),
                                std::to_string(r.workers),
                                std::to_string(r.lanes),
                                TextTable::num(r.wallSec, 3),
                                TextTable::num(r.cpuSec, 3), "yes"});
            sweeps.push_back(r);
        }
        if (!saved.empty() || saved_budget)
            ::setenv("PEARL_THREADS", saved.c_str(), 1);
        else
            ::unsetenv("PEARL_THREADS");

        std::cout << "\nsweep x step matrix (8 jobs, shared budget):\n";
        emit(sweep_table);
    }

    writeJson(json_path, results, sweeps, warmup, cycles, reps);
    validateJson(json_path);
    std::cout << "\n[parstep] wrote " << json_path << " (host cpus: "
              << std::thread::hardware_concurrency() << ")\n";
    return 0;
}

} // namespace
} // namespace bench
} // namespace pearl

int
main()
{
    return pearl::bench::run();
}
