/**
 * @file
 * Extension: cluster-count scaling study (Section III-A2 sketches
 * scaling PEARL up; this tree makes the cluster count a first-class
 * parameter through core::TopologySpec).
 *
 * Runs the same benchmark pair on 16-, 32-, 64- and 128-cluster chips
 * built entirely from a TopologySpec — reservation timing, waveguide
 * grouping, L3 banking and MC placement are all derived, never
 * hand-synced — and reports how throughput, latency and
 * per-delivered-bit laser energy scale with the optical crossbar.
 * Beyond 16 clusters the fabric splits into waveguide groups with
 * slot-arbitrated inter-group express broadcasts.
 *
 * Results land in BENCH_scaling.json (committed, like
 * BENCH_hotpath.json): the simulation metrics are produced at a pinned
 * seed, so those fields are machine-independent and diff only when
 * behaviour changes.  Each row also records host cost —
 * host_cycles_per_sec and host_sec_total, clocked on process CPU time
 * — which IS machine-dependent; treat those two fields as a
 * same-machine trajectory, not a cross-machine contract.  The headline
 * figure is per-cluster throughput retention at 64 clusters vs the
 * paper-sized 16-cluster chip.
 *
 * Knobs: PEARL_BENCH_CYCLES (60000), PEARL_BENCH_WARMUP (10000),
 * PEARL_BENCH_JSON (BENCH_scaling.json), PEARL_THREADS (worker
 * lanes for the deterministic parallel stepper; simulation output is
 * bit-identical at any value), plus the Runner's observability knobs
 * (PEARL_TRACE, PEARL_METRICS_DUMP, PEARL_VERIFY).
 */

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/topology.hpp"
#include "metrics/runner.hpp"

namespace pearl {
namespace bench {
namespace {

constexpr int kClusterCounts[] = {16, 32, 64, 128};
constexpr std::uint64_t kSeed = 1;

struct ScalingRow
{
    core::TopologySpec topo;
    metrics::RunMetrics m;
    double perCluster = 0.0;
    double laserPjPerBit = 0.0;
    double hostSecTotal = 0.0;      //!< process CPU seconds for the run
    double hostCyclesPerSec = 0.0;  //!< simulated cycles per host second
};

void
writeJson(const std::string &path, const std::vector<ScalingRow> &rows,
          std::uint64_t warmup, std::uint64_t cycles)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write ", path);
    const double base = rows.front().perCluster;
    out << "{\n"
        << "  \"bench\": \"ext_scaling\",\n"
        << "  \"pair\": \"FA/DCT\",\n"
        << "  \"seed\": " << kSeed << ",\n"
        << "  \"warmup_cycles\": " << warmup << ",\n"
        << "  \"measure_cycles\": " << cycles << ",\n"
        << "  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const ScalingRow &r = rows[i];
        out << "    {\"clusters\": " << r.topo.clusters
            << ", \"waveguide_groups\": " << r.topo.numGroups()
            << ", \"group_size\": " << r.topo.resolvedGroupSize()
            << ", \"throughput_flits_per_cycle\": "
            << r.m.throughputFlitsPerCycle
            << ", \"per_cluster_throughput\": " << r.perCluster
            << ", \"per_cluster_vs_16\": "
            << (base > 0.0 ? r.perCluster / base : 0.0)
            << ", \"avg_latency_cycles\": " << r.m.avgLatencyCycles
            << ", \"cpu_latency_cycles\": " << r.m.cpuLatencyCycles
            << ", \"laser_energy_per_bit_pj\": " << r.laserPjPerBit
            << ", \"delivered_packets\": " << r.m.deliveredPackets
            << ", \"host_cycles_per_sec\": " << r.hostCyclesPerSec
            << ", \"host_sec_total\": " << r.hostSecTotal
            << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n"
        << "}\n";
}

/** Minimal self-check that the emitted file is sane JSON with live
 *  numbers — this is what the ctest/check.sh smoke run asserts. */
void
validateJson(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot reopen ", path);
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    for (const char *key :
         {"\"bench\": \"ext_scaling\"", "\"results\"",
          "\"per_cluster_throughput\"", "\"waveguide_groups\"",
          "\"host_cycles_per_sec\"", "\"host_sec_total\""}) {
        if (text.find(key) == std::string::npos)
            fatal(path, ": missing key ", key);
    }
    long depth = 0;
    for (char c : text) {
        if (c == '{' || c == '[')
            ++depth;
        else if (c == '}' || c == ']')
            --depth;
        if (depth < 0)
            fatal(path, ": unbalanced brackets");
    }
    if (depth != 0)
        fatal(path, ": unbalanced brackets");
    if (text.find("\"delivered_packets\": 0}") != std::string::npos)
        fatal(path, ": a topology delivered zero packets");
}

int
run()
{
    banner("Extension — cluster-count scaling (TopologySpec)",
           "Section III-A2 scale-out discussion");

    traffic::BenchmarkSuite suite;
    traffic::BenchmarkPair pair{suite.find("FA"), suite.find("DCT")};
    const auto opts = bench::runOptions();
    const std::string json_path = []() {
        const char *p = std::getenv("PEARL_BENCH_JSON");
        return std::string(p ? p : "BENCH_scaling.json");
    }();

    // One spec per cluster count, all derived from a TopologySpec —
    // the grid runs through the parallel sweep engine.
    std::vector<core::TopologySpec> topos;
    std::vector<metrics::RunSpec> specs;
    for (int clusters : kClusterCounts) {
        core::TopologySpec topo;
        topo.clusters = clusters;
        metrics::RunSpec spec;
        spec.configName = "pearl" + std::to_string(clusters);
        spec.pair = pair;
        spec.options = opts;
        spec.options.system = core::makeSystemConfig(topo);
        spec.pearl = topo.pearlConfig();
        spec.makePolicy = [] {
            return std::make_unique<core::StaticPolicy>(
                photonic::WlState::WL64);
        };
        spec.explicitSeed = kSeed;
        topos.push_back(topo);
        specs.push_back(std::move(spec));
    }

    // Each spec runs serially on the calling thread so the CPU-time
    // delta around it is that topology's own host cost (the stepper's
    // worker lanes are included — getrusage covers all threads).
    metrics::Runner runner;
    TextTable t({"clusters", "groups", "thru (flits/cyc)",
                 "thru/cluster", "vs 16", "avg lat", "cpu lat",
                 "laser energy/bit (pJ)", "host c/s"});
    std::vector<ScalingRow> rows;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        ScalingRow row;
        row.topo = topos[i];
        const double t0 = cpuSeconds();
        row.m = runner.run(specs[i]);
        row.hostSecTotal = cpuSeconds() - t0;
        if (row.hostSecTotal > 0.0) {
            row.hostCyclesPerSec =
                double(opts.warmupCycles + opts.measureCycles) /
                row.hostSecTotal;
        }
        row.perCluster =
            row.m.throughputFlitsPerCycle / row.topo.clusters;
        const double bits = static_cast<double>(row.m.deliveredBits);
        row.laserPjPerBit =
            bits > 0.0
                ? row.m.laserPowerW *
                      static_cast<double>(row.m.cycles) *
                      opts.system.arch.networkCycleSeconds() / bits * 1e12
                : 0.0;
        rows.push_back(row);
    }
    const double base = rows.front().perCluster;
    for (const ScalingRow &r : rows) {
        t.addRow({std::to_string(r.topo.clusters),
                  std::to_string(r.topo.numGroups()),
                  TextTable::num(r.m.throughputFlitsPerCycle, 3),
                  TextTable::num(r.perCluster, 3),
                  TextTable::num(base > 0.0 ? r.perCluster / base : 0.0,
                                 2),
                  TextTable::num(r.m.avgLatencyCycles, 1),
                  TextTable::num(r.m.cpuLatencyCycles, 1),
                  TextTable::num(r.laserPjPerBit, 2),
                  TextTable::num(r.hostCyclesPerSec, 0)});
    }
    emit(t);

    writeJson(json_path, rows, opts.warmupCycles, opts.measureCycles);
    validateJson(json_path);
    std::cout << "\n[scaling] wrote " << json_path << "\n"
              << "Expected shape: aggregate throughput grows with the "
                 "cluster count while per-cluster throughput stays "
                 "roughly flat — grouped waveguides add bandwidth with "
                 "every group, and only inter-group packets pay the "
                 "express reservation.\n";
    return 0;
}

} // namespace
} // namespace bench
} // namespace pearl

int
main()
{
    return pearl::bench::run();
}
