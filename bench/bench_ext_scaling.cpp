/**
 * @file
 * Extension: cluster-count scaling study (Section III-A2 sketches
 * scaling PEARL up with additional optical layers; the model is
 * parameterized in the cluster count, bounded at 16 by the directory).
 *
 * Runs the same benchmark pair on 4-, 8- and 16-cluster chips and
 * reports how throughput, latency and per-delivered-bit laser energy
 * scale with the optical crossbar.
 */

#include "bench_common.hpp"
#include "core/network.hpp"
#include "core/system.hpp"
#include "photonic/power_model.hpp"

using namespace pearl;

int
main()
{
    bench::banner("Extension — cluster-count scaling",
                  "Section III-A2 scale-out discussion");

    traffic::BenchmarkSuite suite;
    traffic::BenchmarkPair pair{suite.find("FA"), suite.find("DCT")};
    const auto opts = bench::runOptions();

    TextTable t({"clusters", "cores", "thru (flits/cyc)",
                 "thru/cluster", "p50 lat", "p99 lat",
                 "laser energy/bit (pJ)"});
    for (int clusters : {4, 8, 16}) {
        core::PearlConfig cfg;
        cfg.numClusters = clusters;
        cfg.l3Node = clusters;
        cfg.l3WaveguideGroup = std::max(2, clusters / 2);

        photonic::PowerModel power;
        core::StaticPolicy policy(photonic::WlState::WL64);
        core::PearlNetwork net(cfg, power, core::DbaConfig{}, &policy);

        core::SystemConfig sys;
        sys.home.numBanks = clusters;
        sys.home.memoryNode = clusters;
        core::HeteroSystem system(
            net, pair, sys,
            [&net](int n) { return &net.telemetryOf(n); });
        system.run(opts.warmupCycles + opts.measureCycles);

        const auto cycles = net.cycle();
        const double thru =
            net.stats().throughputFlitsPerCycle(cycles);
        const double bits =
            static_cast<double>(net.stats().deliveredBits());
        t.addRow({std::to_string(clusters),
                  std::to_string(clusters * 6),
                  TextTable::num(thru, 3),
                  TextTable::num(thru / clusters, 3),
                  TextTable::num(net.stats().latencyQuantile(0.5), 0),
                  TextTable::num(net.stats().latencyQuantile(0.99), 0),
                  TextTable::num(bits > 0 ? net.laserEnergyJ() / bits *
                                                1e12
                                          : 0.0,
                                 2)});
    }
    bench::emit(t);
    std::cout << "\nExpected shape: aggregate throughput grows with the "
                 "cluster count while per-cluster throughput and tail "
                 "latency stay roughly flat — the crossbar adds "
                 "bandwidth with every node it adds.\n";
    return 0;
}
