/**
 * @file
 * Hot-path throughput bench: simulator cycles/second and host-ns per
 * delivered packet for the three reference configurations (FCFS,
 * reactive, ML) on the Rad/QRS pair at RW 500, seed 100.
 *
 * Clocked on process CPU time (getrusage), which is immune to VM steal
 * and host contention — wall clock on shared boxes swings by tens of
 * percent run to run, CPU time by a few.  Each config runs
 * PEARL_BENCH_REPS times and reports the best rep (least-disturbed).
 *
 * Results are written to BENCH_hotpath.json next to the recorded
 * pre-overhaul baseline (same workload, same clocking, the tree's
 * default build type at the time: RelWithDebInfo) so the speedup is
 * tracked in-repo instead of in a PR comment that rots.
 *
 * Knobs: PEARL_BENCH_CYCLES (60000), PEARL_BENCH_WARMUP (2000),
 * PEARL_BENCH_REPS (3), PEARL_BENCH_JSON (BENCH_hotpath.json).
 */

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <sys/resource.h>
#include <vector>

#include "bench_common.hpp"
#include "metrics/experiment.hpp"

namespace pearl {
namespace bench {
namespace {

/**
 * The pre-overhaul baseline, measured at the commit before the hot-path
 * PR with this bench's exact workload and clocking (warmup 2000 +
 * measure 60000 cycles, best of 3 reps, CPU-time clock, the then-default
 * RelWithDebInfo build).  Kept as data, not prose, so the speedup the
 * JSON reports is reproducible arithmetic.
 */
struct Baseline
{
    const char *config;
    double cyclesPerSec;
    double nsPerPacket;
};

constexpr Baseline kBaseline[] = {
    {"fcfs", 197102.0, 2388.1},
    {"reactive", 149188.0, 3252.9},
    {"ml", 98252.0, 5885.4},
};

struct HotpathResult
{
    std::string config;
    double cyclesPerSec = 0.0;
    double nsPerPacket = 0.0;
    std::uint64_t deliveredPackets = 0;
};

double
baselineCps(const std::string &config)
{
    for (const Baseline &b : kBaseline) {
        if (config == b.config)
            return b.cyclesPerSec;
    }
    return 0.0;
}

void
writeJson(const std::string &path, const std::vector<HotpathResult> &runs,
          std::uint64_t warmup, std::uint64_t cycles, std::uint64_t reps)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write ", path);
    out << "{\n"
        << "  \"bench\": \"hotpath\",\n"
        << "  \"clock\": \"process_cpu_time\",\n"
        << "  \"pair\": \"Rad/QRS\",\n"
        << "  \"reservation_window\": 500,\n"
        << "  \"seed\": 100,\n"
        << "  \"warmup_cycles\": " << warmup << ",\n"
        << "  \"measure_cycles\": " << cycles << ",\n"
        << "  \"reps\": " << reps << ",\n"
        << "  \"baseline\": {\n";
    for (std::size_t i = 0; i < std::size(kBaseline); ++i) {
        const Baseline &b = kBaseline[i];
        out << "    \"" << b.config << "\": {\"cycles_per_sec\": "
            << b.cyclesPerSec << ", \"ns_per_packet\": " << b.nsPerPacket
            << "}" << (i + 1 < std::size(kBaseline) ? "," : "") << "\n";
    }
    out << "  },\n"
        << "  \"results\": [\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const HotpathResult &r = runs[i];
        const double base = baselineCps(r.config);
        out << "    {\"config\": \"" << r.config
            << "\", \"cycles_per_sec\": " << r.cyclesPerSec
            << ", \"ns_per_packet\": " << r.nsPerPacket
            << ", \"delivered_packets\": " << r.deliveredPackets
            << ", \"speedup_vs_baseline\": "
            << (base > 0.0 ? r.cyclesPerSec / base : 0.0) << "}"
            << (i + 1 < runs.size() ? "," : "") << "\n";
    }
    out << "  ]\n"
        << "}\n";
}

/** Minimal self-check that the emitted file is sane JSON with live
 *  numbers — this is what the ctest smoke run asserts. */
void
validateJson(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot reopen ", path);
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    for (const char *key :
         {"\"bench\": \"hotpath\"", "\"baseline\"", "\"results\"",
          "\"cycles_per_sec\"", "\"ns_per_packet\""}) {
        if (text.find(key) == std::string::npos)
            fatal(path, ": missing key ", key);
    }
    long depth = 0;
    for (char c : text) {
        if (c == '{' || c == '[')
            ++depth;
        else if (c == '}' || c == ']')
            --depth;
        if (depth < 0)
            fatal(path, ": unbalanced brackets");
    }
    if (depth != 0)
        fatal(path, ": unbalanced brackets");
    if (text.find("\"cycles_per_sec\": 0,") != std::string::npos ||
        text.find("\"cycles_per_sec\": 0}") != std::string::npos)
        fatal(path, ": a config reported zero cycles/sec");
}

int
run()
{
    banner("hot-path throughput (cycles/sec, ns/packet)",
           "simulator engineering; tracks the cycle-loop overhaul");

    const std::uint64_t cycles = envU64("PEARL_BENCH_CYCLES", 60000);
    const std::uint64_t warmup = envU64("PEARL_BENCH_WARMUP", 2000);
    const std::uint64_t reps = envU64("PEARL_BENCH_REPS", 3);
    const std::string json_path = []() {
        const char *p = std::getenv("PEARL_BENCH_JSON");
        return std::string(p ? p : "BENCH_hotpath.json");
    }();

    traffic::BenchmarkSuite suite;
    const traffic::BenchmarkPair pair{suite.find("Rad"),
                                      suite.find("QRS")};

    metrics::RunOptions opts;
    opts.warmupCycles = warmup;
    opts.measureCycles = cycles;
    opts.seed = 100;

    core::PearlConfig net;
    net.reservationWindow = 500;

    // A small fixed training pipeline: the bench measures the cost of
    // ML *inference* on the hot path, which is independent of how well
    // the model was fit, so the cheap deterministic fit from the golden
    // suite is the right trade.
    ml::PipelineConfig mlcfg;
    mlcfg.reservationWindow = 500;
    mlcfg.simCycles = 4000;
    mlcfg.maxTrainPairs = 2;
    mlcfg.maxValPairs = 1;
    mlcfg.secondPass = false;
    mlcfg.lambdaGrid = {0.1, 10.0};
    const ml::PipelineResult trained =
        ml::TrainingPipeline(suite, mlcfg).run();

    struct Config
    {
        const char *name;
        core::DbaConfig dba;
        std::unique_ptr<core::PowerPolicy> policy;
    };
    std::vector<Config> configs;
    {
        core::DbaConfig fcfs;
        fcfs.mode = core::DbaConfig::Mode::Fcfs;
        configs.push_back({"fcfs", fcfs,
                           std::make_unique<core::StaticPolicy>(
                               photonic::WlState::WL64)});
        configs.push_back({"reactive", core::DbaConfig{},
                           std::make_unique<core::ReactivePolicy>()});
        configs.push_back(
            {"ml", core::DbaConfig{},
             std::make_unique<ml::MlPowerPolicy>(&trained.model)});
    }

    TextTable table({"config", "cycles/sec", "ns/packet", "baseline c/s",
                     "speedup"});
    std::vector<HotpathResult> results;
    for (auto &cfg : configs) {
        HotpathResult best;
        best.config = cfg.name;
        for (std::uint64_t rep = 0; rep < reps; ++rep) {
            const double t0 = cpuSeconds();
            const metrics::RunMetrics m = metrics::runPearl(
                pair, net, cfg.dba, *cfg.policy, opts, cfg.name);
            const double secs = cpuSeconds() - t0;
            if (secs <= 0.0 || m.deliveredPackets == 0)
                fatal("degenerate rep for config ", cfg.name);
            const double cps = double(warmup + cycles) / secs;
            if (cps > best.cyclesPerSec) {
                best.cyclesPerSec = cps;
                best.nsPerPacket =
                    secs / double(m.deliveredPackets) * 1e9;
                best.deliveredPackets = m.deliveredPackets;
            }
        }
        const double base = baselineCps(best.config);
        table.addRow({best.config, TextTable::num(best.cyclesPerSec, 0),
                      TextTable::num(best.nsPerPacket, 1),
                      TextTable::num(base, 0),
                      TextTable::num(best.cyclesPerSec / base, 2) + "x"});
        results.push_back(best);
    }
    emit(table);

    writeJson(json_path, results, warmup, cycles, reps);
    validateJson(json_path);
    std::cout << "\n[hotpath] wrote " << json_path << "\n";
    return 0;
}

} // namespace
} // namespace bench
} // namespace pearl

int
main()
{
    return pearl::bench::run();
}
