/**
 * @file
 * Ablation: flat trimming power (Table V's 26 uW/ring) vs the thermal
 * drift + heater feedback model (Section III-A1's thermal-sensitivity
 * discussion).  Sweeps the ambient die temperature and reports trimming
 * power and lock stability.
 */

#include "bench_common.hpp"
#include "core/network.hpp"
#include "core/system.hpp"
#include "photonic/power_model.hpp"

using namespace pearl;

int
main()
{
    bench::banner("Ablation — thermal trimming model vs flat Table V "
                  "figure",
                  "Section III-A1 thermal sensitivity");

    traffic::BenchmarkSuite suite;
    traffic::BenchmarkPair pair{suite.find("FA"), suite.find("DCT")};
    const auto opts = bench::runOptions();
    const sim::Cycle cycles = opts.measureCycles;

    TextTable t({"config", "trimming power (W)", "unlocked time",
                 "thru (flits/cyc)"});

    auto runOne = [&](const std::string &name, bool thermal,
                      double ambient) {
        core::PearlConfig cfg;
        cfg.useThermalModel = thermal;
        cfg.thermal.ambientC = ambient;
        photonic::PowerModel power;
        core::StaticPolicy policy(photonic::WlState::WL64);
        core::PearlNetwork net(cfg, power, core::DbaConfig{}, &policy);
        core::HeteroSystem system(
            net, pair, core::SystemConfig{},
            [&net](int n) { return &net.telemetryOf(n); });
        system.run(cycles);
        t.addRow({name,
                  TextTable::num(net.trimmingEnergyJ() /
                                     (cycles * cfg.cycleSeconds),
                                 4),
                  TextTable::pct(net.thermalUnlockedFraction()),
                  TextTable::num(net.stats().throughputFlitsPerCycle(
                                     cycles),
                                 3)});
    };

    runOne("flat 26 uW/ring (Table V)", false, 0.0);
    for (double ambient : {35.0, 45.0, 55.0, 62.0}) {
        runOne("thermal model, ambient " +
                   TextTable::num(ambient, 0) + " C",
               true, ambient);
    }
    bench::emit(t);
    std::cout << "\nExpected shape: trimming power falls as the die "
                 "runs closer to the ring lock point, until the margin "
                 "vanishes and the rings start losing lock.\n";
    return 0;
}
