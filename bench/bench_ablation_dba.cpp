/**
 * @file
 * Ablation: the dynamic-bandwidth-allocation design space the paper
 * explored — FCFS (no allocation), the paper's 25%-step ladder, and
 * proportional allocation quantised at 6.25%, 12.5% and 25% steps
 * (Section III-B: "we considered ... 6.25%, 12.5% and 25% and
 * determined that 25% performed the best").
 */

#include "bench_common.hpp"

using namespace pearl;

int
main()
{
    bench::banner("Ablation — DBA allocation strategy and step size",
                  "Section III-B design-space discussion");

    traffic::BenchmarkSuite suite;
    core::PearlConfig cfg;

    struct Variant
    {
        std::string name;
        core::DbaConfig dba;
    };
    std::vector<Variant> variants;
    {
        core::DbaConfig fcfs;
        fcfs.mode = core::DbaConfig::Mode::Fcfs;
        variants.push_back({"FCFS (no allocation)", fcfs});

        core::DbaConfig ladder;
        variants.push_back({"Paper ladder (25% steps)", ladder});

        for (double step : {0.25, 0.125, 0.0625}) {
            core::DbaConfig prop;
            prop.mode = core::DbaConfig::Mode::Proportional;
            prop.stepFraction = step;
            variants.push_back(
                {"Proportional " + TextTable::pct(step, 2), prop});
        }
    }

    TextTable t({"variant", "thru (flits/cyc)", "avg lat (cyc)",
                 "CPU pkts", "GPU pkts"});
    for (const auto &v : variants) {
        const auto runs = bench::runPearlGrid(
            suite, v.name, cfg, v.dba, [] {
                return std::make_unique<core::StaticPolicy>(
                    photonic::WlState::WL64);
            });
        const auto avg = metrics::average(runs, "avg");
        t.addRow({v.name,
                  TextTable::num(avg.throughputFlitsPerCycle, 3),
                  TextTable::num(avg.avgLatencyCycles, 0),
                  std::to_string(avg.cpuPackets),
                  std::to_string(avg.gpuPackets)});
    }
    bench::emit(t);
    return 0;
}
