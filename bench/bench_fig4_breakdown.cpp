/**
 * @file
 * Regenerates Figure 4: the CPU vs GPU packet-percentage breakdown for
 * every test benchmark pair, measured on PEARL-Dyn at 64 wavelengths.
 *
 * Expected shape: CPU benchmarks create more packets overall (the paper
 * notes this explicitly) but the split varies by pair, and the DBA keeps
 * both classes flowing.
 */

#include "bench_common.hpp"

using namespace pearl;

int
main()
{
    bench::banner("Figure 4 — CPU-GPU packet breakdown per traffic pair",
                  "Figure 4, Section IV-A");

    traffic::BenchmarkSuite suite;
    core::PearlConfig cfg;
    core::DbaConfig dba;

    const auto runs = bench::runPearlGrid(
        suite, "PEARL-Dyn", cfg, dba, [] {
            return std::make_unique<core::StaticPolicy>(
                photonic::WlState::WL64);
        });

    TextTable t({"pair", "CPU pkts", "GPU pkts", "CPU %", "GPU %"});
    double cpu_sum = 0.0;
    for (const auto &m : runs) {
        const double total =
            static_cast<double>(m.cpuPackets + m.gpuPackets);
        const double cpu_pct =
            total > 0 ? static_cast<double>(m.cpuPackets) / total : 0.0;
        cpu_sum += cpu_pct;
        t.addRow({m.pairLabel, std::to_string(m.cpuPackets),
                  std::to_string(m.gpuPackets), TextTable::pct(cpu_pct),
                  TextTable::pct(1.0 - cpu_pct)});
    }
    t.addRow({"average", "", "",
              TextTable::pct(cpu_sum / static_cast<double>(runs.size())),
              TextTable::pct(1.0 -
                             cpu_sum / static_cast<double>(runs.size()))});
    bench::emit(t);
    return 0;
}
