/**
 * @file
 * Ablation: the DBA occupancy upper bounds.  The paper determined
 * beta_CPU-UpperBound = 16% and beta_GPU-UpperBound = 6% by brute-force
 * search on a held-out benchmark set (Section III-B); this bench sweeps
 * the neighbourhood.
 */

#include "bench_common.hpp"

using namespace pearl;

int
main()
{
    bench::banner("Ablation — DBA occupancy upper bounds",
                  "Section III-B threshold search");

    traffic::BenchmarkSuite suite;
    core::PearlConfig cfg;

    TextTable t({"cpuUB", "gpuUB", "thru (flits/cyc)", "avg lat",
                 "CPU pkts", "GPU pkts"});
    for (double cpu_ub : {0.08, 0.16, 0.32}) {
        for (double gpu_ub : {0.03, 0.06, 0.12}) {
            core::DbaConfig dba;
            dba.cpuUpperBound = cpu_ub;
            dba.gpuUpperBound = gpu_ub;
            const auto runs = bench::runPearlGrid(
                suite, "sweep", cfg, dba, [] {
                    return std::make_unique<core::StaticPolicy>(
                        photonic::WlState::WL64);
                });
            const auto avg = metrics::average(runs, "avg");
            t.addRow({TextTable::pct(cpu_ub, 0),
                      TextTable::pct(gpu_ub, 0),
                      TextTable::num(avg.throughputFlitsPerCycle, 3),
                      TextTable::num(avg.avgLatencyCycles, 0),
                      std::to_string(avg.cpuPackets),
                      std::to_string(avg.gpuPackets)});
        }
    }
    bench::emit(t);
    std::cout << "\n(The paper's operating point is cpuUB=16%, "
                 "gpuUB=6%.)\n";
    return 0;
}
