/**
 * @file
 * Regenerates Figure 11 and the Section IV-C sensitivity text: average
 * laser power and throughput of dynamic power scaling while the laser
 * turn-on (stabilisation) time varies over 2, 4, 16, 32 ns.
 *
 * Expected shape (paper): laser power is insensitive to the turn-on
 * time (<1% variation) while throughput degrades with slower lasers
 * (up to ~18% loss at the extreme).
 */

#include "bench_powerscale.hpp"

using namespace pearl;

int
main()
{
    bench::banner("Figure 11 — Laser turn-on time sensitivity",
                  "Figure 11, Section IV-C (third comparison)");

    traffic::BenchmarkSuite suite;
    core::DbaConfig dba;

    TextTable t({"config", "turn-on (ns)", "laser power (W)",
                 "thru (flits/cyc)", "thru vs 2ns"});
    for (std::uint64_t rw : {500ULL, 2000ULL}) {
        double thr_at_2ns = 0.0;
        for (int ns : {2, 4, 16, 32}) {
            core::PearlConfig cfg;
            cfg.reservationWindow = rw;
            // 2 GHz network clock: 1 ns = 2 cycles.
            cfg.laserTurnOnCycles = static_cast<std::uint64_t>(2 * ns);
            const auto result = bench::finish(
                "Dyn RW" + std::to_string(rw),
                bench::runPearlGrid(suite, "Dyn", cfg, dba, [] {
                    return std::make_unique<core::ReactivePolicy>();
                }));
            if (ns == 2)
                thr_at_2ns = result.avg.throughputFlitsPerCycle;
            t.addRow({result.name, std::to_string(ns),
                      TextTable::num(result.avg.laserPowerW, 3),
                      TextTable::num(
                          result.avg.throughputFlitsPerCycle, 3),
                      TextTable::pct(
                          result.avg.throughputFlitsPerCycle /
                              thr_at_2ns -
                          1.0)});
        }
    }
    bench::emit(t);
    std::cout << "\nPaper reference: power variation < 1% across "
                 "turn-on times; Dyn RW500 throughput loss 0-17.9%, "
                 "Dyn RW2000 0-17.3% from 2 ns to 32 ns.\n";
    return 0;
}
