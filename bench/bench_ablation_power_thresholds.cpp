/**
 * @file
 * Ablation: the reactive power-scaling thresholds "were chosen to
 * balance performance (throughput) and power saving and can be changed
 * to favor either" (Section III-C).  This bench scales the four
 * thresholds jointly and maps out the trade-off curve.
 */

#include "bench_common.hpp"

using namespace pearl;

int
main()
{
    bench::banner("Ablation — Reactive power-scaling thresholds",
                  "Section III-C threshold trade-off");

    traffic::BenchmarkSuite suite;
    core::DbaConfig dba;

    // Baseline.
    core::PearlConfig base_cfg;
    const auto base_runs = bench::runPearlGrid(
        suite, "64WL", base_cfg, dba, [] {
            return std::make_unique<core::StaticPolicy>(
                photonic::WlState::WL64);
        });
    const auto base = metrics::average(base_runs, "avg");

    TextTable t({"threshold scale", "thru (flits/cyc)", "thru loss",
                 "laser (W)", "savings"});
    t.addRow({"(64WL baseline)",
              TextTable::num(base.throughputFlitsPerCycle, 3), "-",
              TextTable::num(base.laserPowerW, 3), "-"});

    for (double scale : {0.5, 1.0, 2.0, 4.0}) {
        core::ReactiveThresholds thr;
        thr.upper *= scale;
        thr.midUpper *= scale;
        thr.midLower *= scale;
        thr.lower *= scale;
        core::PearlConfig cfg;
        cfg.reservationWindow = 500;
        const auto runs = bench::runPearlGrid(
            suite, "Dyn", cfg, dba, [thr] {
                return std::make_unique<core::ReactivePolicy>(thr);
            });
        const auto avg = metrics::average(runs, "avg");
        t.addRow({TextTable::num(scale, 2),
                  TextTable::num(avg.throughputFlitsPerCycle, 3),
                  TextTable::pct(1.0 - avg.throughputFlitsPerCycle /
                                           base.throughputFlitsPerCycle),
                  TextTable::num(avg.laserPowerW, 3),
                  TextTable::pct(1.0 -
                                 avg.laserPowerW / base.laserPowerW)});
    }
    bench::emit(t);
    std::cout << "\nHigher thresholds favour power savings; lower "
                 "thresholds favour throughput.\n";
    return 0;
}
