/**
 * @file
 * Regenerates Table V (optical component losses and powers) and derives
 * the per-state laser powers from the bottom-up loss budget, comparing
 * against the paper's calibrated values (Section IV-B).
 */

#include "bench_common.hpp"
#include "photonic/loss_budget.hpp"
#include "photonic/power_model.hpp"
#include "photonic/reservation.hpp"

using namespace pearl;

int
main()
{
    bench::banner("Table V — Optical components and laser power states",
                  "Table V + Section IV-B power values");

    photonic::DeviceConstants dev;
    TextTable t({"Component", "Value", "Unit"});
    t.addRow({"Modulator Insertion",
              TextTable::num(dev.modulatorInsertionDb, 1), "dB"});
    t.addRow({"Waveguide", TextTable::num(dev.waveguideDbPerCm, 1),
              "dB/cm"});
    t.addRow({"Coupler", TextTable::num(dev.couplerDb, 1), "dB"});
    t.addRow({"Splitter", TextTable::num(dev.splitterDb, 1), "dB"});
    t.addRow({"Filter Through", TextTable::num(dev.filterThroughDb, 5),
              "dB"});
    t.addRow({"Filter Drop", TextTable::num(dev.filterDropDb, 1), "dB"});
    t.addRow({"Photodetector", TextTable::num(dev.photodetectorDb, 1),
              "dB"});
    t.addRow({"Receiver Sensitivity",
              TextTable::num(dev.receiverSensitivityDbm, 0), "dBm"});
    t.addRow({"Ring Heating", TextTable::num(dev.ringHeatingW * 1e6, 0),
              "uW/ring"});
    t.addRow({"Ring Modulating",
              TextTable::num(dev.ringModulatingW * 1e6, 0), "uW/ring"});
    bench::emit(t);

    photonic::LossBudget budget{dev, photonic::ChipGeometry{}};
    std::cout << "\nLoss budget:\n";
    TextTable b({"quantity", "value"});
    b.addRow({"worst-case data path loss (dB)",
              TextTable::num(budget.worstCasePathLossDb(), 2)});
    b.addRow({"reservation broadcast loss (dB)",
              TextTable::num(budget.reservationPathLossDb(), 2)});
    b.addRow({"required laser optical power per wavelength (uW)",
              TextTable::num(budget.requiredLaserOpticalW() * 1e6, 1)});
    b.addRow({"calibrated wall-plug efficiency",
              TextTable::pct(budget.calibratedEfficiency(), 2)});
    photonic::ReservationChannel res;
    b.addRow({"reservation packet (bits)",
              std::to_string(res.packetBits())});
    b.addRow({"reservation wavelengths",
              std::to_string(res.wavelengthsNeeded())});
    bench::emit(b);

    std::cout << "\nLaser power per wavelength state "
              << "(network aggregate, Section IV-B):\n";
    photonic::PowerModel paper;
    photonic::PowerModel derived = photonic::PowerModel::fromLossBudget(
        budget, budget.calibratedEfficiency());
    TextTable p({"state", "paper (W)", "derived (W)"});
    for (int i = photonic::kNumWlStates - 1; i >= 0; --i) {
        const auto s = photonic::stateFromIndex(i);
        p.addRow({photonic::toString(s),
                  TextTable::num(paper.laserPowerW(s), 3),
                  TextTable::num(derived.laserPowerW(s), 3)});
    }
    bench::emit(p);
    return 0;
}
