/**
 * @file
 * Regenerates the Section IV-C predictive-performance numbers: NRMSE of
 * the ridge model on validation vs test data for RW500 and RW2000, and
 * the wavelength-state selection accuracy (the paper reports 99.9%
 * accuracy for selecting the top 64WL state at RW2000).
 */

#include "bench_common.hpp"
#include "ml/collector.hpp"

using namespace pearl;

int
main()
{
    bench::banner("ML predictive performance (NRMSE + state accuracy)",
                  "Section IV-C text: NRMSE 0.79->0.68 (RW500), "
                  "0.79->0.05 (RW2000), 99.9% top-state accuracy");

    traffic::BenchmarkSuite suite;

    TextTable t({"window", "val NRMSE", "test NRMSE", "state acc",
                 "top-state acc", "test samples"});
    for (std::uint64_t rw : {500ULL, 2000ULL}) {
        // Train (or load) and then collect test data under the model's
        // own policy — mirroring the paper's deployment measurement.
        auto trained = bench::trainedModel(suite, rw);

        ml::PipelineConfig cfg;
        cfg.reservationWindow = rw;
        cfg.simCycles = bench::envU64("PEARL_BENCH_TRAIN", 30000);
        ml::TrainingPipeline pipeline(suite, cfg);

        ml::MlPolicyConfig pol;
        pol.enable8Wl = false;
        ml::MlPowerPolicy policy(&trained.model, pol);
        ml::Dataset test;
        std::uint64_t seed = 900;
        for (const auto &pair : bench::testPairs(suite))
            test.append(pipeline.collect(pair, policy, ++seed));

        const auto eval = pipeline.evaluate(trained.model, test);
        // Validation NRMSE comes from the training pipeline itself; for
        // a cached model re-collect validation data quickly.
        double val_nrmse = trained.validationNrmse;
        if (trained.trainSamples == 0) {
            ml::Dataset val;
            std::uint64_t vseed = 500;
            for (const auto &pair : suite.validationPairs())
                val.append(pipeline.collect(pair, policy, ++vseed));
            val_nrmse =
                ml::nrmseFit(val.labels,
                             trained.model.predictAll(val));
        }

        t.addRow({"RW" + std::to_string(rw),
                  TextTable::num(val_nrmse, 3),
                  TextTable::num(eval.nrmse, 3),
                  TextTable::pct(eval.stateAccuracy),
                  TextTable::pct(eval.topStateAccuracy),
                  std::to_string(eval.samples)});
    }
    bench::emit(t);
    return 0;
}
