/**
 * @file
 * Shared runner for the power-scaling comparison figures (6, 7, 8, 9):
 * builds the paper's configuration set — the 64WL PEARL-Dyn baseline,
 * reactive dynamic power scaling at RW500/RW2000, and ML power scaling
 * at RW500 (with and without the 8WL state) and RW2000 — and runs each
 * over the test pairs.
 */

#ifndef PEARL_BENCH_POWERSCALE_HPP
#define PEARL_BENCH_POWERSCALE_HPP

#include <memory>

#include "bench_common.hpp"

namespace pearl {
namespace bench {

/** One configuration's aggregated results. */
struct ConfigResult
{
    std::string name;
    std::vector<metrics::RunMetrics> runs;
    metrics::RunMetrics avg;
};

/** Which configurations a figure needs. */
struct PowerScaleSelection
{
    bool baseline64 = true;
    bool dynRw500 = true;
    bool dynRw2000 = true;
    bool mlRw500 = true;
    bool mlRw500No8 = true;
    bool mlRw2000 = true;
};

inline ConfigResult
finish(std::string name, std::vector<metrics::RunMetrics> runs)
{
    ConfigResult r;
    r.avg = metrics::average(runs, "avg");
    r.avg.configName = name;
    r.name = std::move(name);
    r.runs = std::move(runs);
    return r;
}

/** Run the selected configurations (training/loading ML models as
 *  needed) and return them in presentation order. */
inline std::vector<ConfigResult>
runPowerScalingConfigs(const traffic::BenchmarkSuite &suite,
                       const PowerScaleSelection &sel = {})
{
    std::vector<ConfigResult> results;
    core::DbaConfig dba;

    if (sel.baseline64) {
        core::PearlConfig cfg; // RW irrelevant for a static policy
        results.push_back(finish(
            "64WL (PEARL-Dyn)",
            runPearlGrid(suite, "64WL", cfg, dba, [] {
                return std::make_unique<core::StaticPolicy>(
                    photonic::WlState::WL64);
            })));
    }

    auto dyn = [&](std::uint64_t rw) {
        core::PearlConfig cfg;
        cfg.reservationWindow = rw;
        results.push_back(finish(
            "Dyn RW" + std::to_string(rw),
            runPearlGrid(suite, "Dyn", cfg, dba, [] {
                return std::make_unique<core::ReactivePolicy>();
            })));
    };
    if (sel.dynRw500)
        dyn(500);
    if (sel.dynRw2000)
        dyn(2000);

    // ML configurations share one trained model per window size; the
    // load-once ModelCache behind trainedModel() keeps the entries
    // stable, so the policy factories can hold references into it.
    auto mlRun = [&](std::uint64_t rw, bool enable8, std::string name) {
        const ml::RidgeRegression &model = trainedModel(suite, rw).model;
        core::PearlConfig cfg;
        cfg.reservationWindow = rw;
        ml::MlPolicyConfig pol;
        pol.enable8Wl = enable8;
        results.push_back(finish(
            name, runPearlGrid(suite, name, cfg, dba,
                                 [&model, pol] {
                                     return std::make_unique<
                                         ml::MlPowerPolicy>(&model, pol);
                                 })));
    };
    if (sel.mlRw500)
        mlRun(500, true, "ML RW500");
    if (sel.mlRw500No8)
        mlRun(500, false, "ML RW500 no8WL");
    if (sel.mlRw2000)
        mlRun(2000, true, "ML RW2000");

    return results;
}

/** The 64WL baseline average from a result set (first entry). */
inline const metrics::RunMetrics &
baselineOf(const std::vector<ConfigResult> &results)
{
    PEARL_ASSERT(!results.empty());
    return results.front().avg;
}

} // namespace bench
} // namespace pearl

#endif // PEARL_BENCH_POWERSCALE_HPP
