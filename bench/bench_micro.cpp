/**
 * @file
 * Google-benchmark microbenchmarks of the simulator kernels: how fast
 * the models themselves run (useful when sizing longer experiments).
 */

#include <benchmark/benchmark.h>

#include "cache/cache_array.hpp"
#include "cache/nmoesi.hpp"
#include "core/network.hpp"
#include "core/system.hpp"
#include "electrical/cmesh.hpp"
#include "ml/ridge.hpp"
#include "photonic/power_model.hpp"
#include "traffic/suite.hpp"

using namespace pearl;

namespace {

void
BM_PearlNetworkStep(benchmark::State &state)
{
    core::PearlConfig cfg;
    photonic::PowerModel power;
    core::StaticPolicy policy(photonic::WlState::WL64);
    core::PearlNetwork net(cfg, power, core::DbaConfig{}, &policy);
    traffic::BenchmarkSuite suite;
    traffic::BenchmarkPair pair{suite.find("FA"), suite.find("DCT")};
    core::HeteroSystem system(net, pair, core::SystemConfig{},
                              [&net](int n) { return &net.telemetryOf(n); });
    for (auto _ : state)
        system.run(1);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PearlNetworkStep);

void
BM_CmeshStep(benchmark::State &state)
{
    electrical::CmeshNetwork net;
    traffic::BenchmarkSuite suite;
    traffic::BenchmarkPair pair{suite.find("FA"), suite.find("DCT")};
    core::HeteroSystem system(net, pair, core::SystemConfig{});
    for (auto _ : state)
        system.run(1);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CmeshStep);

void
BM_CacheArrayFind(benchmark::State &state)
{
    cache::CacheArray<> arr(8192, 16);
    Rng rng(3);
    for (int i = 0; i < 4096; ++i) {
        const std::uint64_t addr = rng.below(16384);
        auto &v = arr.victim(addr);
        arr.install(v, addr, cache::CacheState::S);
    }
    std::uint64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(arr.find(addr));
        addr = (addr * 2654435761u + 1) % 16384;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheArrayFind);

void
BM_NmoesiProbe(benchmark::State &state)
{
    int i = 0;
    for (auto _ : state) {
        const auto s = static_cast<cache::CacheState>(i % 6);
        benchmark::DoNotOptimize(
            cache::applyProbe(s, cache::ProbeType::Invalidate));
        ++i;
    }
}
BENCHMARK(BM_NmoesiProbe);

void
BM_RidgeFit30Features(benchmark::State &state)
{
    Rng rng(7);
    ml::Dataset data;
    for (int i = 0; i < 2000; ++i) {
        std::vector<double> x(30);
        for (auto &v : x)
            v = rng.uniform();
        data.add(std::move(x), rng.uniform() * 50.0);
    }
    for (auto _ : state) {
        ml::RidgeRegression model;
        model.fit(data, 1.0);
        benchmark::DoNotOptimize(model.intercept());
    }
}
BENCHMARK(BM_RidgeFit30Features);

void
BM_RidgePredict(benchmark::State &state)
{
    Rng rng(7);
    ml::Dataset data;
    for (int i = 0; i < 200; ++i) {
        std::vector<double> x(30);
        for (auto &v : x)
            v = rng.uniform();
        data.add(std::move(x), rng.uniform() * 50.0);
    }
    ml::RidgeRegression model;
    model.fit(data, 1.0);
    const std::vector<double> probe(30, 0.5);
    for (auto _ : state)
        benchmark::DoNotOptimize(model.predict(probe));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RidgePredict);

} // namespace

BENCHMARK_MAIN();
