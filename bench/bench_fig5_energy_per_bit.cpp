/**
 * @file
 * Regenerates Figure 5: energy per bit of PEARL-Dyn vs PEARL-FCFS vs
 * the electrical CMESH at static 64/32/16-wavelength configurations
 * (CMESH bandwidth reduced proportionally).
 *
 * Expected shape (paper): PEARL-Dyn needs less energy per bit than
 * PEARL-FCFS at constrained bandwidth, and is roughly an order of
 * magnitude below CMESH at every width.
 */

#include "bench_common.hpp"

using namespace pearl;

namespace {

metrics::RunMetrics
averageOf(const std::vector<metrics::RunMetrics> &runs)
{
    return metrics::average(runs, "avg(16 pairs)");
}

} // namespace

int
main()
{
    bench::banner("Figure 5 — Energy per bit vs static bandwidth",
                  "Figure 5, Section IV-C (first comparison)");

    traffic::BenchmarkSuite suite;

    struct Row
    {
        std::string name;
        metrics::RunMetrics avg;
    };
    std::vector<Row> rows;

    const photonic::WlState states[] = {photonic::WlState::WL64,
                                        photonic::WlState::WL32,
                                        photonic::WlState::WL16};
    const int cmesh_slowdown[] = {1, 2, 4};

    for (int i = 0; i < 3; ++i) {
        const auto state = states[i];
        const std::string suffix =
            std::to_string(photonic::wavelengths(state)) + "WL";

        core::PearlConfig net_cfg;
        net_cfg.initialState = state;

        core::DbaConfig dyn;
        rows.push_back(
            {"PEARL-Dyn " + suffix,
             averageOf(bench::runPearlGrid(
                 suite, "PEARL-Dyn " + suffix, net_cfg, dyn, [state] {
                     return std::make_unique<core::StaticPolicy>(state);
                 }))});

        core::DbaConfig fcfs;
        fcfs.mode = core::DbaConfig::Mode::Fcfs;
        rows.push_back(
            {"PEARL-FCFS " + suffix,
             averageOf(bench::runPearlGrid(
                 suite, "PEARL-FCFS " + suffix, net_cfg, fcfs, [state] {
                     return std::make_unique<core::StaticPolicy>(state);
                 }))});

        electrical::CmeshConfig mesh;
        mesh.linkCyclesPerFlit = cmesh_slowdown[i];
        rows.push_back({"CMESH " + suffix,
                        averageOf(bench::runCmeshGrid(
                            suite, "CMESH " + suffix, mesh))});
    }

    TextTable t({"config", "energy/bit (pJ)", "thru (flits/cyc)",
                 "thru (Gbps)", "avg lat (cyc)", "CPU lat", "GPU lat"});
    for (const auto &row : rows) {
        t.addRow({row.name, TextTable::num(row.avg.energyPerBitPj, 2),
                  TextTable::num(row.avg.throughputFlitsPerCycle, 3),
                  TextTable::num(row.avg.throughputGbps, 1),
                  TextTable::num(row.avg.avgLatencyCycles, 0),
                  TextTable::num(row.avg.cpuLatencyCycles, 0),
                  TextTable::num(row.avg.gpuLatencyCycles, 0)});
    }
    bench::emit(t);

    // Headline deltas in the paper's framing.
    auto find = [&rows](const std::string &n) -> const metrics::RunMetrics & {
        for (const auto &r : rows) {
            if (r.name == n)
                return r.avg;
        }
        fatal("missing row ", n);
    };
    std::cout << "\nHeadline comparisons (paper: Fig. 5 text):\n";
    TextTable h({"comparison", "measured", "paper"});
    const auto dyn32 = find("PEARL-Dyn 32WL");
    const auto fcfs32 = find("PEARL-FCFS 32WL");
    const auto cmesh32 = find("CMESH 32WL");
    const auto dyn16 = find("PEARL-Dyn 16WL");
    const auto cmesh16 = find("CMESH 16WL");
    h.addRow({"Dyn vs FCFS energy/bit @32WL",
              TextTable::pct(1.0 - dyn32.energyPerBitPj /
                                       fcfs32.energyPerBitPj),
              "19.7% lower"});
    h.addRow({"Dyn vs FCFS CPU latency @32WL",
              TextTable::pct(1.0 - dyn32.cpuLatencyCycles /
                                       fcfs32.cpuLatencyCycles),
              "(fairness: see examples/gpu_contention)"});
    h.addRow({"Dyn vs CMESH energy/bit @32WL",
              TextTable::pct(1.0 - dyn32.energyPerBitPj /
                                       cmesh32.energyPerBitPj),
              "91.9% lower"});
    h.addRow({"Dyn vs CMESH energy/bit @16WL",
              TextTable::pct(1.0 - dyn16.energyPerBitPj /
                                       cmesh16.energyPerBitPj),
              "88.8% lower"});
    bench::emit(h);
    bench::sweepFooter();
    return 0;
}
