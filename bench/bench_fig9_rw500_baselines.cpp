/**
 * @file
 * Regenerates Figure 9: throughput of the RW500 power-scaling designs
 * (without the 8WL state) against the PEARL-Dyn, PEARL-FCFS and CMESH
 * baselines.
 *
 * Expected shape (paper): dynamic and ML power scaling beat CMESH by
 * ~34% and ~20% respectively; Dyn RW500 roughly matches PEARL-FCFS and
 * sits ~8% under PEARL-Dyn at constant 64 wavelengths.
 */

#include "bench_powerscale.hpp"

using namespace pearl;

int
main()
{
    bench::banner("Figure 9 — RW500 power scaling vs baseline "
                  "architectures",
                  "Figure 9, Section IV-C");

    traffic::BenchmarkSuite suite;
    core::DbaConfig dba;

    std::vector<bench::ConfigResult> results;

    // PEARL-Dyn (64 WL).
    {
        core::PearlConfig cfg;
        results.push_back(bench::finish(
            "PEARL-Dyn (64WL)",
            bench::runPearlGrid(suite, "PEARL-Dyn", cfg, dba, [] {
                return std::make_unique<core::StaticPolicy>(
                    photonic::WlState::WL64);
            })));
    }
    // PEARL-FCFS (64 WL).
    {
        core::PearlConfig cfg;
        core::DbaConfig fcfs;
        fcfs.mode = core::DbaConfig::Mode::Fcfs;
        results.push_back(bench::finish(
            "PEARL-FCFS (64WL)",
            bench::runPearlGrid(suite, "PEARL-FCFS", cfg, fcfs, [] {
                return std::make_unique<core::StaticPolicy>(
                    photonic::WlState::WL64);
            })));
    }
    // Dyn RW500.
    {
        core::PearlConfig cfg;
        cfg.reservationWindow = 500;
        results.push_back(bench::finish(
            "Dyn RW500",
            bench::runPearlGrid(suite, "Dyn RW500", cfg, dba, [] {
                return std::make_unique<core::ReactivePolicy>();
            })));
    }
    // ML RW500 without the 8WL state (as plotted in Figure 9).
    {
        const auto &model = bench::trainedModel(suite, 500);
        core::PearlConfig cfg;
        cfg.reservationWindow = 500;
        ml::MlPolicyConfig pol;
        pol.enable8Wl = false;
        results.push_back(bench::finish(
            "ML RW500 (no 8WL)",
            bench::runPearlGrid(suite, "ML RW500", cfg, dba,
                                  [&model, pol] {
                                      return std::make_unique<
                                          ml::MlPowerPolicy>(
                                          &model.model, pol);
                                  })));
    }
    // CMESH.
    {
        electrical::CmeshConfig mesh;
        results.push_back(bench::finish(
            "CMESH", bench::runCmeshGrid(suite, "CMESH", mesh)));
    }

    const double cmesh_thru =
        results.back().avg.throughputFlitsPerCycle;
    TextTable t({"config", "thru (flits/cyc)", "vs CMESH",
                 "paper vs CMESH"});
    const char *paper[] = {"+34% (Dyn family)", "-", "+34%", "+20%",
                           "baseline"};
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        t.addRow({r.name,
                  TextTable::num(r.avg.throughputFlitsPerCycle, 3),
                  TextTable::pct(r.avg.throughputFlitsPerCycle /
                                     cmesh_thru -
                                 1.0),
                  paper[i]});
    }
    bench::emit(t);

    std::cout << "\nLatency view (cycles):\n";
    TextTable l({"config", "avg latency"});
    for (const auto &r : results)
        l.addRow({r.name, TextTable::num(r.avg.avgLatencyCycles, 0)});
    bench::emit(l);
    bench::sweepFooter();
    return 0;
}
