/**
 * @file
 * Regenerates Table III (the 30-feature list of the dynamic laser
 * scaling model) and the Section IV-B hardware-cost numbers of the
 * inference unit (44.6 pJ per prediction, 178.4 uW at RW500).
 */

#include "bench_common.hpp"
#include "ml/cost_model.hpp"
#include "ml/features.hpp"

using namespace pearl;

int
main()
{
    bench::banner("Table III — Dynamic Laser Scaling Feature List",
                  "Table III + Section IV-B cost estimate");

    TextTable t({"#", "feature"});
    const auto &names = ml::FeatureExtractor::names();
    for (std::size_t i = 0; i < names.size(); ++i)
        t.addRow({std::to_string(i + 1), names[i]});
    bench::emit(t);

    ml::MlCostModel cost;
    std::cout << "\nInference-unit cost (Section IV-B):\n";
    TextTable c({"quantity", "model", "paper"});
    c.addRow({"multiplies per prediction",
              std::to_string(cost.multiplies()), "~30"});
    c.addRow({"adds per prediction", std::to_string(cost.adds()), "~29"});
    c.addRow({"energy per prediction (pJ)",
              TextTable::num(cost.inferenceEnergyJ() * 1e12, 1), "44.6"});
    c.addRow({"compute time (ns)", TextTable::num(cost.computeTimeNs, 0),
              "5"});
    c.addRow({"avg power at RW500 (uW)",
              TextTable::num(cost.averagePowerW(500) * 1e6, 1), "178.4"});
    c.addRow({"multiplier power at RW500 (uW)",
              TextTable::num(cost.multiplierPowerW(500) * 1e6, 1), "132"});
    bench::emit(c);
    return 0;
}
