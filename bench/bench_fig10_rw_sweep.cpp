/**
 * @file
 * Regenerates Figure 10: throughput of ML power scaling across
 * reservation-window sizes (100, 500, 1000, 2000 cycles).
 *
 * Expected shape (paper): the best throughput comes with RW2000 (which
 * predicts the top state most accurately); shorter windows trade
 * throughput for power savings.
 */

#include "bench_powerscale.hpp"

using namespace pearl;

int
main()
{
    bench::banner("Figure 10 — ML power scaling vs reservation window",
                  "Figure 10, Section IV-C");

    traffic::BenchmarkSuite suite;
    core::DbaConfig dba;

    // Baseline for normalisation.
    core::PearlConfig base_cfg;
    const auto baseline = bench::finish(
        "64WL", bench::runPearlGrid(suite, "64WL", base_cfg, dba, [] {
            return std::make_unique<core::StaticPolicy>(
                photonic::WlState::WL64);
        }));

    TextTable t({"config", "thru (flits/cyc)", "vs 64WL",
                 "laser power (W)", "savings"});
    t.addRow({"64WL baseline",
              TextTable::num(baseline.avg.throughputFlitsPerCycle, 3),
              "-", TextTable::num(baseline.avg.laserPowerW, 3), "-"});

    for (std::uint64_t rw : {100ULL, 500ULL, 1000ULL, 2000ULL}) {
        const auto &model = bench::trainedModel(suite, rw);
        core::PearlConfig cfg;
        cfg.reservationWindow = rw;
        ml::MlPolicyConfig pol;
        const auto result = bench::finish(
            "ML RW" + std::to_string(rw),
            bench::runPearlGrid(suite, "ML", cfg, dba, [&model, pol] {
                return std::make_unique<ml::MlPowerPolicy>(&model.model,
                                                           pol);
            }));
        t.addRow({result.name,
                  TextTable::num(result.avg.throughputFlitsPerCycle, 3),
                  TextTable::pct(result.avg.throughputFlitsPerCycle /
                                     baseline.avg
                                         .throughputFlitsPerCycle -
                                 1.0),
                  TextTable::num(result.avg.laserPowerW, 3),
                  TextTable::pct(1.0 - result.avg.laserPowerW /
                                           baseline.avg.laserPowerW)});
    }
    bench::emit(t);
    bench::sweepFooter();
    return 0;
}
