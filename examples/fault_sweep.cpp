/**
 * @file
 * Fault-rate sweep: PEARL under a degrading optical fabric.
 *
 * Sweeps the fault-injection severity (BER floor, reservation-drop
 * rate and laser-bank MTBF scale together) and reports, for the FCFS
 * baseline, the reactive scaler, the ML scaler and the guarded ML
 * scaler (ml::GuardedPolicy — reactive fallback when the model's
 * online error spikes), how achieved throughput, latency, energy per
 * bit and the recovery counters respond.  The healthy column
 * (severity 0) reproduces the ideal fabric the paper evaluates; the
 * rest is the new robustness axis, and the fallback columns show when
 * the guardrails decided the model could no longer be trusted.
 *
 * The 5 severities x 4 policies grid runs through the parallel sweep
 * engine (PEARL_THREADS=1 forces the serial path); every cell
 * keeps the same traffic seed so the policies stay comparable under an
 * identical fault realisation.
 *
 * Usage: fault_sweep [cpu_abbrev gpu_abbrev [cycles]]
 */

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "metrics/runner.hpp"
#include "ml/guarded_policy.hpp"
#include "ml/pipeline.hpp"
#include "ml/policy.hpp"
#include "traffic/suite.hpp"

using namespace pearl;

namespace {

/** One severity step of the sweep. */
struct Severity
{
    const char *label;
    double baseBer;
    double reservationDropRate;
    double bankMtbfCycles; //!< 0 = banks never fail
};

core::PearlConfig
faultyConfig(const Severity &sev)
{
    core::PearlConfig cfg;
    if (sev.baseBer > 0.0 || sev.reservationDropRate > 0.0 ||
        sev.bankMtbfCycles > 0.0) {
        cfg.faults.enabled = true;
        cfg.faults.seed = 0xFA017;
        cfg.faults.baseBer = sev.baseBer;
        cfg.faults.reservationDropRate = sev.reservationDropRate;
        cfg.faults.bankMtbfCycles = sev.bankMtbfCycles;
        cfg.faults.bankMttrCycles = 20000.0;
    }
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    traffic::BenchmarkSuite suite;
    const std::string cpu = argc > 2 ? argv[1] : "FA";
    const std::string gpu = argc > 2 ? argv[2] : "Reduc";
    traffic::BenchmarkPair pair{suite.find(cpu), suite.find(gpu)};

    metrics::RunOptions opts;
    opts.warmupCycles = 5000;
    opts.measureCycles = argc > 3
                             ? static_cast<sim::Cycle>(atoll(argv[3]))
                             : 40000;

    const std::vector<Severity> sweep = {
        {"healthy", 0.0, 0.0, 0.0},
        {"mild", 5e-6, 1e-4, 0.0},
        {"moderate", 5e-5, 1e-3, 500000.0},
        {"severe", 2e-4, 5e-3, 100000.0},
        {"extreme", 5e-4, 2e-2, 20000.0},
    };

    std::cout << "Fault sweep for " << pair.label() << " ("
              << opts.measureCycles << " measured cycles)\n"
              << "severity scales BER floor, reservation-drop rate and "
                 "bank failure rate together\n\n"
              << "Training the ML scaler once on the healthy fabric "
                 "(small budget, demo quality)...\n\n";

    // One trained model drives every faulty run: the point of the sweep
    // is how a policy trained on the ideal fabric degrades.
    ml::PipelineConfig train_cfg;
    train_cfg.simCycles = 15000;
    train_cfg.maxTrainPairs = 6;
    train_cfg.secondPass = false;
    ml::TrainingPipeline pipeline(suite, train_cfg);
    const ml::PipelineResult trained = pipeline.run();

    // Build the severity x policy grid.  Every cell pins the same
    // traffic seed so the three policies face identical workloads and
    // fault realisations at each severity.
    const std::vector<const char *> policies = {"fcfs", "reactive",
                                                "ml", "guarded"};
    const ml::GuardrailConfig guard = ml::GuardrailConfig::fromEnv();
    std::vector<metrics::RunSpec> jobs;
    for (const Severity &sev : sweep) {
        for (const char *policy_name : policies) {
            const std::string pname = policy_name;
            metrics::RunSpec job;
            job.configName = std::string(sev.label) + "/" + pname;
            job.label = job.configName;
            job.pair = pair;
            job.options = opts;
            job.explicitSeed = opts.seed;
            job.pearl = faultyConfig(sev);
            if (pname == "fcfs") {
                // PEARL-FCFS baseline: full power, no per-class DBA.
                job.dba.mode = core::DbaConfig::Mode::Fcfs;
                job.makePolicy = [] {
                    return std::make_unique<core::StaticPolicy>(
                        photonic::WlState::WL64);
                };
            } else if (pname == "reactive") {
                job.makePolicy = [] {
                    return std::make_unique<core::ReactivePolicy>();
                };
            } else if (pname == "ml") {
                job.makePolicy = [&trained] {
                    return std::make_unique<ml::MlPowerPolicy>(
                        &trained.model);
                };
            } else {
                job.makePolicy = [&trained, guard] {
                    return std::make_unique<ml::GuardedPolicy>(
                        &trained.model, ml::MlPolicyConfig{}, guard);
                };
            }
            jobs.push_back(std::move(job));
        }
    }

    const metrics::SweepResult result =
        metrics::Runner().sweep(jobs);
    if (const metrics::SweepJobResult *bad = result.firstError())
        fatal("sweep job '", bad->metrics.configName,
              "' failed: ", bad->error);

    TextTable t({"severity", "policy", "thru (flits/cyc)",
                 "avg lat (cyc)", "energy/bit (pJ)", "retx", "drops",
                 "timeouts", "fb entries", "fb windows"});
    std::uint64_t fallback_entries = 0;
    std::size_t idx = 0;
    for (const Severity &sev : sweep) {
        for (const char *policy_name : policies) {
            const metrics::RunMetrics &m = result.jobs[idx++].metrics;
            fallback_entries += m.policyFallbackEntries;
            t.addRow({sev.label, policy_name,
                      TextTable::num(m.throughputFlitsPerCycle, 3),
                      TextTable::num(m.avgLatencyCycles, 0),
                      TextTable::num(m.energyPerBitPj, 2),
                      std::to_string(m.retransmittedPackets),
                      std::to_string(m.droppedPackets),
                      std::to_string(m.ackTimeouts),
                      std::to_string(m.policyFallbackEntries),
                      std::to_string(m.policyFallbackWindows)});
        }
    }
    t.print(std::cout);

    std::cout
        << "\nReading the table: retransmissions recover corrupted and "
           "reservation-dropped packets at a latency cost; drops only "
           "appear when the retry budget is exhausted.  Power-scaling "
           "policies (reactive/ML) ride the fault-capped wavelength "
           "ceiling instead of commanding dead laser banks.  The "
           "fallback columns count guarded-ML routers abandoning the "
           "model (entries) and the windows they spent on the reactive "
           "fallback; they stay 0 for every other policy and for a "
           "healthy, well-predicted fabric.\n";
    std::cout << "\n[guardrails] total fallback engagements across the "
                 "sweep: "
              << fallback_entries << "\n";

    const metrics::SweepSummary &s = result.summary;
    std::cout << "\n[sweep] " << s.jobs << " jobs on " << s.threads
              << " threads: wall " << TextTable::num(s.wallSeconds, 2)
              << " s, aggregate "
              << TextTable::num(s.aggregateJobSeconds, 2)
              << " s, speedup " << TextTable::num(s.speedup(), 2)
              << "x\n";
    return 0;
}
