/**
 * @file
 * Fault-rate sweep: PEARL under a degrading optical fabric.
 *
 * Sweeps the fault-injection severity (BER floor, reservation-drop
 * rate and laser-bank MTBF scale together) and reports, for the FCFS
 * baseline, the reactive scaler and the ML scaler, how achieved
 * throughput, latency, energy per bit and the recovery counters
 * respond.  The healthy column (severity 0) reproduces the ideal
 * fabric the paper evaluates; the rest is the new robustness axis.
 *
 * Usage: fault_sweep [cpu_abbrev gpu_abbrev [cycles]]
 */

#include <iostream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "metrics/experiment.hpp"
#include "ml/pipeline.hpp"
#include "ml/policy.hpp"
#include "traffic/suite.hpp"

using namespace pearl;

namespace {

/** One severity step of the sweep. */
struct Severity
{
    const char *label;
    double baseBer;
    double reservationDropRate;
    double bankMtbfCycles; //!< 0 = banks never fail
};

core::PearlConfig
faultyConfig(const Severity &sev)
{
    core::PearlConfig cfg;
    if (sev.baseBer > 0.0 || sev.reservationDropRate > 0.0 ||
        sev.bankMtbfCycles > 0.0) {
        cfg.faults.enabled = true;
        cfg.faults.seed = 0xFA017;
        cfg.faults.baseBer = sev.baseBer;
        cfg.faults.reservationDropRate = sev.reservationDropRate;
        cfg.faults.bankMtbfCycles = sev.bankMtbfCycles;
        cfg.faults.bankMttrCycles = 20000.0;
    }
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    traffic::BenchmarkSuite suite;
    const std::string cpu = argc > 2 ? argv[1] : "FA";
    const std::string gpu = argc > 2 ? argv[2] : "Reduc";
    traffic::BenchmarkPair pair{suite.find(cpu), suite.find(gpu)};

    metrics::RunOptions opts;
    opts.warmupCycles = 5000;
    opts.measureCycles = argc > 3
                             ? static_cast<sim::Cycle>(atoll(argv[3]))
                             : 40000;

    const std::vector<Severity> sweep = {
        {"healthy", 0.0, 0.0, 0.0},
        {"mild", 5e-6, 1e-4, 0.0},
        {"moderate", 5e-5, 1e-3, 500000.0},
        {"severe", 2e-4, 5e-3, 100000.0},
        {"extreme", 5e-4, 2e-2, 20000.0},
    };

    std::cout << "Fault sweep for " << pair.label() << " ("
              << opts.measureCycles << " measured cycles)\n"
              << "severity scales BER floor, reservation-drop rate and "
                 "bank failure rate together\n\n"
              << "Training the ML scaler once on the healthy fabric "
                 "(small budget, demo quality)...\n\n";

    // One trained model drives every faulty run: the point of the sweep
    // is how a policy trained on the ideal fabric degrades.
    ml::PipelineConfig train_cfg;
    train_cfg.simCycles = 15000;
    train_cfg.maxTrainPairs = 6;
    train_cfg.secondPass = false;
    ml::TrainingPipeline pipeline(suite, train_cfg);
    const ml::PipelineResult trained = pipeline.run();

    TextTable t({"severity", "policy", "thru (flits/cyc)",
                 "avg lat (cyc)", "energy/bit (pJ)", "retx", "drops",
                 "timeouts"});
    for (const Severity &sev : sweep) {
        for (const char *policy_name :
             {"fcfs", "reactive", "ml"}) {
            core::PearlConfig cfg = faultyConfig(sev);
            core::DbaConfig dba;
            core::StaticPolicy fcfs_policy(photonic::WlState::WL64);
            core::ReactivePolicy reactive_policy;
            ml::MlPowerPolicy ml_policy(&trained.model);

            core::PowerPolicy *policy = nullptr;
            if (std::string(policy_name) == "fcfs") {
                // PEARL-FCFS baseline: full power, no per-class DBA.
                dba.mode = core::DbaConfig::Mode::Fcfs;
                policy = &fcfs_policy;
            } else if (std::string(policy_name) == "reactive") {
                policy = &reactive_policy;
            } else {
                policy = &ml_policy;
            }

            const metrics::RunMetrics m = metrics::runPearl(
                pair, cfg, dba, *policy, opts,
                std::string(sev.label) + "/" + policy_name);
            t.addRow({sev.label, policy_name,
                      TextTable::num(m.throughputFlitsPerCycle, 3),
                      TextTable::num(m.avgLatencyCycles, 0),
                      TextTable::num(m.energyPerBitPj, 2),
                      std::to_string(m.retransmittedPackets),
                      std::to_string(m.droppedPackets),
                      std::to_string(m.ackTimeouts)});
        }
    }
    t.print(std::cout);

    std::cout
        << "\nReading the table: retransmissions recover corrupted and "
           "reservation-dropped packets at a latency cost; drops only "
           "appear when the retry budget is exhausted.  Power-scaling "
           "policies (reactive/ML) ride the fault-capped wavelength "
           "ceiling instead of commanding dead laser banks.\n";
    return 0;
}
