/**
 * @file
 * Quickstart: run one CPU+GPU benchmark pair on the PEARL photonic
 * crossbar and on the electrical CMESH baseline through the
 * `metrics::Runner` facade, and print throughput, latency and energy
 * per bit.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 *
 * To capture a Chrome/Perfetto trace of the photonic run (wavelength
 * transitions, DBA splits, fault summary, sweep phases):
 *   PEARL_TRACE=1 PEARL_TRACE_PATH=quickstart_trace.json \
 *       ./build/examples/quickstart
 * then load quickstart_trace.json at https://ui.perfetto.dev.
 */

#include <cstring>
#include <iostream>
#include <memory>

#include "common/env.hpp"
#include "common/table.hpp"
#include "metrics/runner.hpp"
#include "traffic/suite.hpp"

using namespace pearl;

int
main(int argc, char **argv)
{
    // `--env-help` prints the registry of PEARL_* runtime knobs (the
    // same single source of truth the README tables are built from).
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--env-help") == 0) {
            std::cout << envHelp();
            return 0;
        }
    }
    traffic::BenchmarkSuite suite;
    // Fluid Animate (CPU) running alongside DCT (GPU) — a Table IV pair.
    traffic::BenchmarkPair pair{suite.find("FA"), suite.find("DCT")};

    metrics::RunOptions opts;
    opts.warmupCycles = 2000;
    opts.measureCycles = 20000;

    // PEARL with dynamic bandwidth allocation at a constant 64
    // wavelengths (PEARL-Dyn).
    metrics::RunSpec pearl_spec;
    pearl_spec.configName = "PEARL-Dyn";
    pearl_spec.pair = pair;
    pearl_spec.options = opts;
    pearl_spec.fabric = metrics::RunSpec::Fabric::Pearl;
    pearl_spec.makePolicy = [] {
        return std::make_unique<core::StaticPolicy>(
            photonic::WlState::WL64);
    };

    // Electrical concentrated-mesh baseline.
    metrics::RunSpec cmesh_spec;
    cmesh_spec.configName = "CMESH";
    cmesh_spec.pair = pair;
    cmesh_spec.options = opts;
    cmesh_spec.fabric = metrics::RunSpec::Fabric::Cmesh;

    // The Runner picks up PEARL_TRACE / PEARL_TRACE_PATH /
    // PEARL_METRICS_DUMP from the environment.  Single runs write the
    // trace path verbatim, so run the photonic config last — its trace
    // (the interesting one) is what ends up on disk.
    metrics::Runner runner;
    const auto cmesh = runner.run(cmesh_spec);
    const auto pearl = runner.run(pearl_spec);

    TextTable table({"config", "thru (flits/cyc)", "thru (Gbps)",
                     "avg latency (cyc)", "energy/bit (pJ)",
                     "pkts delivered"});
    for (const auto &m : {pearl, cmesh}) {
        table.addRow({m.configName, TextTable::num(m.throughputFlitsPerCycle),
                      TextTable::num(m.throughputGbps, 1),
                      TextTable::num(m.avgLatencyCycles, 1),
                      TextTable::num(m.energyPerBitPj, 2),
                      std::to_string(m.deliveredPackets)});
    }
    std::cout << "Benchmark pair: " << pair.label() << "\n\n";
    table.print(std::cout);
    if (runner.options().sweep.trace.enabled) {
        std::cout << "\n[trace] wrote "
                  << runner.options().sweep.trace.path
                  << " (load it at https://ui.perfetto.dev)\n";
    }
    return 0;
}
