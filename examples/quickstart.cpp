/**
 * @file
 * Quickstart: run one CPU+GPU benchmark pair on the PEARL photonic
 * crossbar and on the electrical CMESH baseline, and print throughput,
 * latency and energy per bit.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "common/table.hpp"
#include "metrics/experiment.hpp"
#include "traffic/suite.hpp"

using namespace pearl;

int
main()
{
    traffic::BenchmarkSuite suite;
    // Fluid Animate (CPU) running alongside DCT (GPU) — a Table IV pair.
    traffic::BenchmarkPair pair{suite.find("FA"), suite.find("DCT")};

    metrics::RunOptions opts;
    opts.warmupCycles = 2000;
    opts.measureCycles = 20000;

    // PEARL with dynamic bandwidth allocation at a constant 64
    // wavelengths (PEARL-Dyn).
    core::PearlConfig pearl_cfg;
    core::DbaConfig dba;
    core::StaticPolicy wl64(photonic::WlState::WL64);
    const auto pearl =
        metrics::runPearl(pair, pearl_cfg, dba, wl64, opts, "PEARL-Dyn");

    // Electrical concentrated-mesh baseline.
    electrical::CmeshConfig cmesh_cfg;
    const auto cmesh = metrics::runCmesh(pair, cmesh_cfg, opts, "CMESH");

    TextTable table({"config", "thru (flits/cyc)", "thru (Gbps)",
                     "avg latency (cyc)", "energy/bit (pJ)",
                     "pkts delivered"});
    for (const auto &m : {pearl, cmesh}) {
        table.addRow({m.configName, TextTable::num(m.throughputFlitsPerCycle),
                      TextTable::num(m.throughputGbps, 1),
                      TextTable::num(m.avgLatencyCycles, 1),
                      TextTable::num(m.energyPerBitPj, 2),
                      std::to_string(m.deliveredPackets)});
    }
    std::cout << "Benchmark pair: " << pair.label() << "\n\n";
    table.print(std::cout);
    return 0;
}
