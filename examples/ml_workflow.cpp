/**
 * @file
 * End-to-end walkthrough of the ML power-scaling workflow
 * (Section III-D / IV-A):
 *
 *   1. collect training data over benchmark pairs under random
 *      wavelength states;
 *   2. fit ridge models over a lambda grid, tune on validation pairs;
 *   3. second collection pass under the first model's policy; refit;
 *   4. inspect the learned feature weights;
 *   5. evaluate NRMSE + state-selection accuracy on held-out pairs;
 *   6. deploy the model as the network's power policy and measure the
 *      power/throughput outcome.
 *
 * Usage: ml_workflow [train_cycles] (default 20000; larger = better
 * model, slower run)
 */

#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>

#include "common/table.hpp"
#include "metrics/runner.hpp"
#include "ml/features.hpp"
#include "ml/pipeline.hpp"
#include "traffic/suite.hpp"

using namespace pearl;

int
main(int argc, char **argv)
{
    traffic::BenchmarkSuite suite;

    ml::PipelineConfig cfg;
    cfg.reservationWindow = 500;
    cfg.simCycles =
        argc > 1 ? static_cast<std::uint64_t>(atoll(argv[1])) : 20000;
    cfg.maxTrainPairs = 12; // keep the demo quick; 0 = all 36
    ml::TrainingPipeline pipeline(suite, cfg);

    std::cout << "1-3. Training ridge model (RW500, two passes, "
              << cfg.simCycles << " cycles/pair, "
              << (cfg.maxTrainPairs ? cfg.maxTrainPairs : 36)
              << " training pairs)...\n";
    const auto result = pipeline.run();
    std::cout << "   lambda = " << result.bestLambda
              << ", validation NRMSE = "
              << TextTable::num(result.validationNrmse, 3) << ", "
              << result.trainSamples << " training samples\n\n";

    std::cout << "4. Largest-magnitude feature weights:\n";
    const auto &names = ml::FeatureExtractor::names();
    std::vector<std::pair<double, int>> ranked;
    for (std::size_t j = 0; j < result.model.weights().size(); ++j) {
        ranked.push_back(
            {std::abs(result.model.weights()[j]), static_cast<int>(j)});
    }
    std::sort(ranked.rbegin(), ranked.rend());
    TextTable w({"rank", "feature", "weight (standardised)"});
    for (int i = 0; i < 8; ++i) {
        const int j = ranked[static_cast<std::size_t>(i)].second;
        w.addRow({std::to_string(i + 1),
                  names[static_cast<std::size_t>(j)],
                  TextTable::num(
                      result.model.weights()[static_cast<std::size_t>(j)],
                      3)});
    }
    w.print(std::cout);

    std::cout << "\n5. Held-out evaluation on 4 test pairs:\n";
    core::StaticPolicy base_policy(photonic::WlState::WL64);
    ml::Dataset test;
    auto test_pairs = suite.testPairs();
    test_pairs.resize(4);
    std::uint64_t seed = 40;
    for (const auto &pair : test_pairs)
        test.append(pipeline.collect(pair, base_policy, ++seed));
    const auto eval = pipeline.evaluate(result.model, test);
    std::cout << "   test NRMSE = " << TextTable::num(eval.nrmse, 3)
              << ", state accuracy = " << TextTable::pct(eval.stateAccuracy)
              << ", top-state accuracy = "
              << TextTable::pct(eval.topStateAccuracy) << "\n\n";

    std::cout << "6. Deploying the model as the power policy:\n";
    metrics::RunOptions opts;
    opts.warmupCycles = 5000;
    opts.measureCycles = 30000;
    core::PearlConfig net_cfg;
    net_cfg.reservationWindow = 500;
    core::DbaConfig dba;

    metrics::Runner runner;
    auto deploy =
        [&](const std::string &name,
            std::function<std::unique_ptr<core::PowerPolicy>()> make) {
            metrics::RunSpec spec;
            spec.configName = name;
            spec.pair = test_pairs[0];
            spec.options = opts;
            spec.fabric = metrics::RunSpec::Fabric::Pearl;
            spec.pearl = net_cfg;
            spec.dba = dba;
            spec.makePolicy = std::move(make);
            return runner.run(spec);
        };
    const auto base = deploy("64WL", [] {
        return std::make_unique<core::StaticPolicy>(
            photonic::WlState::WL64);
    });
    // `result` outlives the synchronous run below.
    const auto deployed = deploy("ML", [&result] {
        return std::make_unique<ml::MlPowerPolicy>(&result.model);
    });
    TextTable d({"config", "laser (W)", "thru (flits/cyc)"});
    for (const auto &m : {base, deployed}) {
        d.addRow({m.configName, TextTable::num(m.laserPowerW, 3),
                  TextTable::num(m.throughputFlitsPerCycle, 3)});
    }
    d.print(std::cout);
    std::cout << "   laser savings: "
              << TextTable::pct(1.0 - deployed.laserPowerW /
                                          base.laserPowerW)
              << ", throughput change: "
              << TextTable::pct(deployed.throughputFlitsPerCycle /
                                    base.throughputFlitsPerCycle -
                                1.0)
              << "\n";

    std::ofstream out("pearl_ml_rw500.model");
    result.model.save(out);
    std::cout << "\nModel saved to pearl_ml_rw500.model (reusable by "
                 "power_scaling_explorer and the benches).\n";
    return 0;
}
