/**
 * @file
 * Trace-driven evaluation, the paper's methodology end to end:
 *
 *   1. run a benchmark pair on the full system (clusters + caches) with
 *      a recording network, capturing the packet trace;
 *   2. save the trace to disk (pearl_demo.trace);
 *   3. replay the *same* trace through the PEARL crossbar and the
 *      electrical CMESH and compare delivery latency / completion time.
 *
 * Usage: trace_replay [capture_cycles]  (default 20000)
 */

#include <fstream>
#include <iostream>

#include "common/table.hpp"
#include "core/network.hpp"
#include "core/system.hpp"
#include "electrical/cmesh.hpp"
#include "photonic/power_model.hpp"
#include "traffic/suite.hpp"
#include "traffic/trace.hpp"

using namespace pearl;

int
main(int argc, char **argv)
{
    const sim::Cycle capture_cycles =
        argc > 1 ? static_cast<sim::Cycle>(atoll(argv[1])) : 20000;
    traffic::BenchmarkSuite suite;
    traffic::BenchmarkPair pair{suite.find("x264"), suite.find("Reduc")};

    // 1. Capture.
    std::cout << "Capturing " << capture_cycles << " cycles of "
              << pair.label() << " traffic...\n";
    photonic::PowerModel power;
    core::StaticPolicy policy(photonic::WlState::WL64);
    core::PearlNetwork inner(core::PearlConfig{}, power,
                             core::DbaConfig{}, &policy);
    traffic::TraceRecordingNetwork recorder(inner);
    core::HeteroSystem system(recorder, pair, core::SystemConfig{},
                              [&inner](int n) {
                                  return &inner.telemetryOf(n);
                              });
    system.run(capture_cycles);
    traffic::Trace trace = recorder.takeTrace();
    std::cout << "   captured " << trace.size() << " packets over "
              << trace.lastCycle() << " cycles\n";

    // 2. Persist.
    {
        std::ofstream out("pearl_demo.trace");
        traffic::TraceWriter::write(out, trace);
    }
    std::cout << "   saved to pearl_demo.trace\n\n";

    // 3. Replay on both networks.
    auto replay = [&trace](sim::Network &net, const char *name) {
        traffic::TraceReplayDriver driver(net, trace);
        const bool done = driver.runToCompletion(
            trace.lastCycle() * 4 + 200000);
        return std::tuple<std::string, bool, sim::Cycle, double>(
            name, done, net.cycle(), net.stats().avgLatency());
    };

    core::StaticPolicy p2(photonic::WlState::WL64);
    core::PearlNetwork pearl(core::PearlConfig{}, power,
                             core::DbaConfig{}, &p2);
    const auto pearl_result = replay(pearl, "PEARL (64WL)");

    electrical::CmeshNetwork cmesh;
    const auto cmesh_result = replay(cmesh, "CMESH");

    TextTable t({"network", "completed", "cycles to drain",
                 "avg packet latency"});
    for (const auto &r : {pearl_result, cmesh_result}) {
        t.addRow({std::get<0>(r), std::get<1>(r) ? "yes" : "NO",
                  std::to_string(std::get<2>(r)),
                  TextTable::num(std::get<3>(r), 1)});
    }
    t.print(std::cout);
    std::cout << "\nSame offered traffic, two fabrics: the photonic "
                 "crossbar drains the trace faster at lower latency.\n";
    return 0;
}
