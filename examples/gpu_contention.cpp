/**
 * @file
 * The paper's motivating scenario (Section I): bursty GPU memory
 * traffic overwhelming the network and starving CPU packets.
 *
 * This example drives the PEARL crossbar directly with synthetic
 * injectors — a trickle of latency-sensitive CPU requests against a
 * saturating stream of GPU data packets at every router — and compares
 * first-come first-serve arbitration with PEARL's dynamic bandwidth
 * allocator (Algorithm 1).  Under FCFS the CPU packets queue behind the
 * GPU flood; the DBA guarantees the CPU class a bandwidth share, so its
 * latency collapses while GPU throughput barely moves.
 */

#include <algorithm>
#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/network.hpp"
#include "photonic/power_model.hpp"

using namespace pearl;

namespace {

struct Result
{
    double cpuLatency, gpuLatency;
    double cpuThroughput, gpuThroughput;
};

Result
runWith(core::DbaConfig::Mode mode)
{
    core::PearlConfig cfg;
    core::DbaConfig dba;
    dba.mode = mode;
    photonic::PowerModel power;
    core::StaticPolicy policy(photonic::WlState::WL64);
    core::PearlNetwork net(cfg, power, dba, &policy);

    Rng rng(7);
    const sim::Cycle cycles = 30000;
    std::uint64_t id = 0;
    for (sim::Cycle t = 0; t < cycles; ++t) {
        for (int r = 0; r < 16; ++r) {
            // GPU flood: a 5-flit data packet whenever there is room —
            // far beyond what the link can carry.
            sim::Packet gpu;
            gpu.id = ++id;
            gpu.msgClass = sim::MsgClass::RespGpuL2Down;
            gpu.op = sim::CoherenceOp::Data;
            gpu.src = r;
            gpu.dst = static_cast<int>(rng.below(17));
            if (gpu.dst == r)
                gpu.dst = (r + 1) % 17;
            gpu.sizeBits = sim::kResponseBits;
            gpu.cycleCreated = t;
            net.inject(gpu);

            // CPU trickle: a single-flit request every ~50 cycles.
            if (rng.chance(0.02)) {
                sim::Packet cpu;
                cpu.id = ++id;
                cpu.msgClass = sim::MsgClass::ReqCpuL2Down;
                cpu.op = sim::CoherenceOp::Read;
                cpu.src = r;
                cpu.dst = static_cast<int>(rng.below(17));
                if (cpu.dst == r)
                    cpu.dst = (r + 3) % 17;
                cpu.sizeBits = sim::kRequestBits;
                cpu.cycleCreated = t;
                net.inject(cpu);
            }
        }
        net.step();
        net.delivered().clear();
    }

    const auto &st = net.stats();
    return Result{
        st.avgLatency(sim::CoreType::CPU),
        st.avgLatency(sim::CoreType::GPU),
        static_cast<double>(st.cpuDeliveredPackets()) / cycles,
        static_cast<double>(st.gpuDeliveredPackets()) / cycles};
}

} // namespace

int
main()
{
    std::cout << "Scenario: a saturating GPU data flood against a "
                 "latency-sensitive CPU trickle\non every PEARL router "
                 "(Section I motivation, Algorithm 1 payoff).\n\n";

    const Result fcfs = runWith(core::DbaConfig::Mode::Fcfs);
    const Result dba = runWith(core::DbaConfig::Mode::PaperLadder);

    TextTable t({"arbitration", "CPU latency (cyc)", "GPU latency (cyc)",
                 "CPU pkts/cyc", "GPU pkts/cyc"});
    t.addRow({"FCFS", TextTable::num(fcfs.cpuLatency, 1),
              TextTable::num(fcfs.gpuLatency, 1),
              TextTable::num(fcfs.cpuThroughput, 3),
              TextTable::num(fcfs.gpuThroughput, 3)});
    t.addRow({"Dynamic bandwidth allocation",
              TextTable::num(dba.cpuLatency, 1),
              TextTable::num(dba.gpuLatency, 1),
              TextTable::num(dba.cpuThroughput, 3),
              TextTable::num(dba.gpuThroughput, 3)});
    t.print(std::cout);

    std::cout << "\nCPU latency with the DBA is "
              << TextTable::num(fcfs.cpuLatency /
                                    std::max(1.0, dba.cpuLatency),
                                1)
              << "x lower than under FCFS; GPU throughput changes by "
              << TextTable::pct(dba.gpuThroughput / fcfs.gpuThroughput -
                                1.0)
              << ".\n";
    return 0;
}
