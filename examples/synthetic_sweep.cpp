/**
 * @file
 * Latency-load curves under synthetic traffic.
 *
 * Produces the classic NoC characterisation — average packet latency vs
 * offered load — for the PEARL photonic crossbar and the electrical
 * CMESH under a chosen synthetic pattern, showing where each network
 * saturates.  Every (network, load) point is an independent simulation,
 * so the grid runs through the parallel sweep engine; results are
 * bit-identical at any PEARL_THREADS setting.
 *
 * Usage: synthetic_sweep [pattern]   (uniform|transpose|bitcomp|hotspot|
 *                                     neighbor; default uniform)
 */

#include <iostream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/network.hpp"
#include "electrical/cmesh.hpp"
#include "metrics/runner.hpp"
#include "photonic/power_model.hpp"
#include "traffic/synthetic.hpp"

using namespace pearl;

namespace {

constexpr sim::Cycle kCyclesPerPoint = 15000;

/** Fill the generic metrics fields from one measured load point. */
metrics::RunMetrics
toMetrics(const traffic::LoadPoint &p)
{
    metrics::RunMetrics m;
    m.cycles = kCyclesPerPoint;
    m.avgLatencyCycles = p.avgLatencyCycles;
    m.throughputFlitsPerCycle = p.deliveredFlitsPerCycle;
    return m;
}

} // namespace

int
main(int argc, char **argv)
{
    traffic::Pattern pattern = traffic::Pattern::UniformRandom;
    if (argc > 1) {
        const std::string name = argv[1];
        if (name == "transpose")
            pattern = traffic::Pattern::Transpose;
        else if (name == "bitcomp")
            pattern = traffic::Pattern::BitComplement;
        else if (name == "hotspot")
            pattern = traffic::Pattern::Hotspot;
        else if (name == "neighbor")
            pattern = traffic::Pattern::Neighbor;
    }

    traffic::SyntheticConfig base_cfg;
    base_cfg.pattern = pattern;
    const std::vector<double> loads = {0.01, 0.05, 0.1, 0.2, 0.3,
                                       0.45, 0.6,  0.8, 1.0};

    std::cout << "Latency-load sweep, pattern: "
              << traffic::toString(pattern) << "\n\n";

    // One custom sweep job per (network kind, load) point.  The
    // saturation flags land in per-job slots of a pre-sized vector, so
    // concurrent jobs never touch the same memory; joining the sweep
    // publishes them.  All points keep the same injector seed so the
    // curves stay comparable across loads, as in the serial original.
    const photonic::PowerModel power;
    std::vector<metrics::RunSpec> jobs;
    std::vector<char> saturated(2 * loads.size(), 0);
    for (int kind = 0; kind < 2; ++kind) {
        for (std::size_t i = 0; i < loads.size(); ++i) {
            const double load = loads[i];
            char *sat_slot = &saturated[kind * loads.size() + i];
            metrics::RunSpec job;
            job.configName = kind == 0 ? "PEARL" : "CMESH";
            job.label = TextTable::num(load, 2);
            job.explicitSeed = base_cfg.seed;
            job.custom = [kind, load, base_cfg, &power, sat_slot](
                             const metrics::RunSpec &j,
                             std::uint64_t seed) {
                traffic::SyntheticConfig cfg = base_cfg;
                cfg.flitsPerSourcePerCycle = load;
                cfg.seed = seed;

                traffic::LoadPoint point;
                if (kind == 0) {
                    core::StaticPolicy policy(photonic::WlState::WL64);
                    core::PearlNetwork net(core::PearlConfig{}, power,
                                           core::DbaConfig{}, &policy);
                    point = traffic::measureLoadPoint(net, cfg,
                                                      kCyclesPerPoint);
                } else {
                    electrical::CmeshNetwork net(
                        electrical::CmeshConfig{});
                    point = traffic::measureLoadPoint(net, cfg,
                                                      kCyclesPerPoint);
                }
                *sat_slot = point.saturated ? 1 : 0;
                metrics::RunMetrics m = toMetrics(point);
                m.configName = j.configName;
                return m;
            };
            jobs.push_back(std::move(job));
        }
    }

    const metrics::SweepResult result =
        metrics::Runner().sweep(jobs);
    if (const metrics::SweepJobResult *bad = result.firstError())
        fatal("sweep job failed: ", bad->error);

    TextTable t({"offered (flits/src/cyc)", "PEARL lat", "PEARL thru",
                 "CMESH lat", "CMESH thru"});
    for (std::size_t i = 0; i < loads.size(); ++i) {
        const auto &pearl_point = result.jobs[i].metrics;
        const auto &cmesh_point =
            result.jobs[loads.size() + i].metrics;
        auto cell = [&saturated](const metrics::RunMetrics &m,
                                 std::size_t slot) {
            return TextTable::num(m.avgLatencyCycles, 1) +
                   (saturated[slot] ? " (sat)" : "");
        };
        t.addRow({TextTable::num(loads[i], 2), cell(pearl_point, i),
                  TextTable::num(pearl_point.throughputFlitsPerCycle, 2),
                  cell(cmesh_point, loads.size() + i),
                  TextTable::num(cmesh_point.throughputFlitsPerCycle,
                                 2)});
    }
    t.print(std::cout);
    std::cout << "\n(sat) marks loads where the injector backlog kept "
                 "growing — past the saturation point.\n";

    const metrics::SweepSummary &s = result.summary;
    std::cout << "\n[sweep] " << s.jobs << " jobs on " << s.threads
              << " threads: wall " << TextTable::num(s.wallSeconds, 2)
              << " s, aggregate "
              << TextTable::num(s.aggregateJobSeconds, 2)
              << " s, speedup " << TextTable::num(s.speedup(), 2)
              << "x\n";
    return 0;
}
