/**
 * @file
 * Latency-load curves under synthetic traffic.
 *
 * Produces the classic NoC characterisation — average packet latency vs
 * offered load — for the PEARL photonic crossbar and the electrical
 * CMESH under a chosen synthetic pattern, showing where each network
 * saturates.
 *
 * Usage: synthetic_sweep [pattern]   (uniform|transpose|bitcomp|hotspot|
 *                                     neighbor; default uniform)
 */

#include <iostream>
#include <memory>
#include <string>

#include "common/table.hpp"
#include "core/network.hpp"
#include "electrical/cmesh.hpp"
#include "photonic/power_model.hpp"
#include "traffic/synthetic.hpp"

using namespace pearl;

int
main(int argc, char **argv)
{
    traffic::Pattern pattern = traffic::Pattern::UniformRandom;
    if (argc > 1) {
        const std::string name = argv[1];
        if (name == "transpose")
            pattern = traffic::Pattern::Transpose;
        else if (name == "bitcomp")
            pattern = traffic::Pattern::BitComplement;
        else if (name == "hotspot")
            pattern = traffic::Pattern::Hotspot;
        else if (name == "neighbor")
            pattern = traffic::Pattern::Neighbor;
    }

    traffic::SyntheticConfig cfg;
    cfg.pattern = pattern;
    const std::vector<double> loads = {0.01, 0.05, 0.1, 0.2, 0.3,
                                       0.45, 0.6,  0.8, 1.0};

    std::cout << "Latency-load sweep, pattern: "
              << traffic::toString(pattern) << "\n\n";

    core::StaticPolicy policy(photonic::WlState::WL64);
    photonic::PowerModel power;
    const auto pearl_curve = traffic::latencyLoadSweep(
        [&] {
            return std::make_unique<core::PearlNetwork>(
                core::PearlConfig{}, power, core::DbaConfig{}, &policy);
        },
        loads, cfg, 15000);

    const auto cmesh_curve = traffic::latencyLoadSweep(
        [] {
            return std::make_unique<electrical::CmeshNetwork>(
                electrical::CmeshConfig{});
        },
        loads, cfg, 15000);

    TextTable t({"offered (flits/src/cyc)", "PEARL lat", "PEARL thru",
                 "CMESH lat", "CMESH thru"});
    for (std::size_t i = 0; i < loads.size(); ++i) {
        auto cell = [](const traffic::LoadPoint &p) {
            return TextTable::num(p.avgLatencyCycles, 1) +
                   (p.saturated ? " (sat)" : "");
        };
        t.addRow({TextTable::num(loads[i], 2), cell(pearl_curve[i]),
                  TextTable::num(pearl_curve[i].deliveredFlitsPerCycle,
                                 2),
                  cell(cmesh_curve[i]),
                  TextTable::num(cmesh_curve[i].deliveredFlitsPerCycle,
                                 2)});
    }
    t.print(std::cout);
    std::cout << "\n(sat) marks loads where the injector backlog kept "
                 "growing — past the saturation point.\n";
    return 0;
}
