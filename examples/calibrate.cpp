/**
 * @file
 * Developer tool: sweep the test benchmark pairs on PEARL-Dyn (64 WL) and
 * CMESH and print load diagnostics — injection rates, buffer occupancy,
 * cache miss rates — used to keep the synthetic traffic in the regime the
 * paper's techniques operate in (loaded but not permanently saturated).
 */

#include <algorithm>
#include <iostream>

#include "common/table.hpp"
#include "core/network.hpp"
#include "core/system.hpp"
#include "electrical/cmesh.hpp"
#include "photonic/power_model.hpp"
#include "traffic/suite.hpp"

using namespace pearl;

namespace {

struct Diag
{
    double injectedPerCycle;
    double deliveredFlitsPerCycle;
    double cpuOcc, gpuOcc;
    double cpuL2Miss, gpuL2Miss;
    double avgLat;
    double stallFrac;
    double betaP50 = 0, betaP90 = 0, betaMax = 0;
};

Diag
runPearlDiag(const traffic::BenchmarkPair &pair, sim::Cycle cycles)
{
    core::PearlConfig cfg;
    core::DbaConfig dba;
    core::StaticPolicy policy(photonic::WlState::WL64);
    photonic::PowerModel power;
    core::PearlNetwork net(cfg, power, dba, &policy);
    std::vector<double> betas;
    net.setWindowCollector([&betas](const core::WindowRecord &rec) {
        betas.push_back(rec.betaTotalMean);
    });
    core::SystemConfig sys;
    core::HeteroSystem system(net, pair, sys, [&net](int n) {
        return &net.telemetryOf(n);
    });

    double cpu_occ = 0, gpu_occ = 0;
    sim::Cycle samples = 0;
    for (sim::Cycle i = 0; i < cycles; ++i) {
        system.run(1);
        if (i % 64 == 0) {
            for (int r = 0; r < 16; ++r) {
                cpu_occ += net.router(r).injectBuffers().occupancy(
                    sim::CoreType::CPU);
                gpu_occ += net.router(r).injectBuffers().occupancy(
                    sim::CoreType::GPU);
            }
            ++samples;
        }
    }
    const auto cs = system.aggregateClusterStats();
    Diag d;
    d.injectedPerCycle =
        double(net.stats().injectedPackets()) / double(cycles);
    d.deliveredFlitsPerCycle =
        double(net.stats().deliveredFlits()) / double(cycles);
    d.cpuOcc = cpu_occ / double(samples * 16);
    d.gpuOcc = gpu_occ / double(samples * 16);
    d.cpuL2Miss = cs.l2MissRate(sim::CoreType::CPU);
    d.gpuL2Miss = cs.l2MissRate(sim::CoreType::GPU);
    d.avgLat = net.stats().avgLatency();
    const auto total_acc = cs.accesses[0] + cs.accesses[1];
    d.stallFrac = total_acc ? double(cs.stalled[0] + cs.stalled[1]) /
                                  double(total_acc)
                            : 0;
    if (!betas.empty()) {
        std::sort(betas.begin(), betas.end());
        d.betaP50 = betas[betas.size() / 2];
        d.betaP90 = betas[betas.size() * 9 / 10];
        d.betaMax = betas.back();
    }
    return d;
}

Diag
runCmeshDiag(const traffic::BenchmarkPair &pair, sim::Cycle cycles)
{
    electrical::CmeshConfig cfg;
    electrical::CmeshNetwork net(cfg);
    core::SystemConfig sys;
    core::HeteroSystem system(net, pair, sys);
    system.run(cycles);
    const auto cs = system.aggregateClusterStats();
    Diag d{};
    d.injectedPerCycle =
        double(net.stats().injectedPackets()) / double(cycles);
    d.deliveredFlitsPerCycle =
        double(net.stats().deliveredFlits()) / double(cycles);
    d.cpuL2Miss = cs.l2MissRate(sim::CoreType::CPU);
    d.gpuL2Miss = cs.l2MissRate(sim::CoreType::GPU);
    d.avgLat = net.stats().avgLatency();
    const auto total_acc = cs.accesses[0] + cs.accesses[1];
    d.stallFrac = total_acc ? double(cs.stalled[0] + cs.stalled[1]) /
                                  double(total_acc)
                            : 0;
    return d;
}

} // namespace

int
main(int argc, char **argv)
{
    const sim::Cycle cycles = argc > 1 ? std::atoll(argv[1]) : 20000;
    const double scale = argc > 2 ? std::atof(argv[2]) : 1.0;
    traffic::BenchmarkSuite suite;

    TextTable table({"pair", "net", "inj pkt/cyc", "del flit/cyc",
                     "cpuOcc", "gpuOcc", "L2miss C/G", "lat", "stall",
                     "beta p50/p90/max"});
    auto pairs = suite.testPairs();
    for (auto &pr : pairs) {
        pr.cpu.accessRateOn *= scale;
        pr.cpu.accessRateOff *= scale;
        pr.gpu.accessRateOn *= scale;
        pr.gpu.accessRateOff *= scale;
    }
    for (const auto &pair : pairs) {
        const Diag p = runPearlDiag(pair, cycles);
        table.addRow({pair.label(), "PEARL",
                      TextTable::num(p.injectedPerCycle),
                      TextTable::num(p.deliveredFlitsPerCycle),
                      TextTable::num(p.cpuOcc, 2),
                      TextTable::num(p.gpuOcc, 2),
                      TextTable::num(p.cpuL2Miss, 2) + "/" +
                          TextTable::num(p.gpuL2Miss, 2),
                      TextTable::num(p.avgLat, 0),
                      TextTable::num(p.stallFrac, 2),
                      TextTable::num(p.betaP50, 3) + "/" +
                          TextTable::num(p.betaP90, 3) + "/" +
                          TextTable::num(p.betaMax, 2)});
        const Diag c = runCmeshDiag(pair, cycles);
        table.addRow({"", "CMESH", TextTable::num(c.injectedPerCycle),
                      TextTable::num(c.deliveredFlitsPerCycle), "-", "-",
                      TextTable::num(c.cpuL2Miss, 2) + "/" +
                          TextTable::num(c.gpuL2Miss, 2),
                      TextTable::num(c.avgLat, 0),
                      TextTable::num(c.stallFrac, 2)});
    }
    table.print(std::cout);
    return 0;
}
