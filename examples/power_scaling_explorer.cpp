/**
 * @file
 * Power-performance trade-off explorer.
 *
 * Runs one benchmark pair under every wavelength-scaling policy the
 * library provides — static states, the reactive scaler at several
 * window sizes, and (optionally, given a cached model file) the ML
 * scaler — and prints the laser-power / throughput frontier.  Every
 * run goes through the `metrics::Runner` facade, so the PEARL_TRACE /
 * PEARL_METRICS_DUMP knobs work here too.
 *
 * Usage: power_scaling_explorer [cpu_abbrev gpu_abbrev [cycles]]
 */

#include <fstream>
#include <iostream>
#include <memory>

#include "common/table.hpp"
#include "metrics/runner.hpp"
#include "ml/policy.hpp"
#include "ml/ridge.hpp"
#include "traffic/suite.hpp"

using namespace pearl;

int
main(int argc, char **argv)
{
    traffic::BenchmarkSuite suite;
    const std::string cpu = argc > 2 ? argv[1] : "FA";
    const std::string gpu = argc > 2 ? argv[2] : "Reduc";
    traffic::BenchmarkPair pair{suite.find(cpu), suite.find(gpu)};

    metrics::RunOptions opts;
    opts.warmupCycles = 10000;
    opts.measureCycles = argc > 3
                             ? static_cast<sim::Cycle>(atoll(argv[3]))
                             : 60000;
    core::DbaConfig dba;

    std::cout << "Power-performance frontier for " << pair.label()
              << " (" << opts.measureCycles << " cycles)\n\n";

    TextTable t({"policy", "laser (W)", "thru (flits/cyc)",
                 "avg lat (cyc)", "time in 8/16/32/48/64 WL"});
    auto addRow = [&t](const metrics::RunMetrics &m) {
        std::string residency;
        for (int s = 0; s < photonic::kNumWlStates; ++s) {
            if (s)
                residency += "/";
            residency += TextTable::num(
                m.residency[static_cast<std::size_t>(s)] * 100, 0);
        }
        t.addRow({m.configName, TextTable::num(m.laserPowerW, 3),
                  TextTable::num(m.throughputFlitsPerCycle, 3),
                  TextTable::num(m.avgLatencyCycles, 0), residency});
    };

    metrics::Runner runner;
    auto runPolicy =
        [&](const std::string &name, const core::PearlConfig &cfg,
            std::function<std::unique_ptr<core::PowerPolicy>()> make) {
            metrics::RunSpec spec;
            spec.configName = name;
            spec.pair = pair;
            spec.options = opts;
            spec.fabric = metrics::RunSpec::Fabric::Pearl;
            spec.pearl = cfg;
            spec.dba = dba;
            spec.makePolicy = std::move(make);
            addRow(runner.run(spec));
        };

    // Static states.
    for (auto s : {photonic::WlState::WL64, photonic::WlState::WL32,
                   photonic::WlState::WL16}) {
        core::PearlConfig cfg;
        cfg.initialState = s;
        runPolicy(std::string("static ") + photonic::toString(s), cfg,
                  [s] { return std::make_unique<core::StaticPolicy>(s); });
    }

    // Reactive scaling across window sizes.
    for (std::uint64_t rw : {250ULL, 500ULL, 1000ULL, 2000ULL}) {
        core::PearlConfig cfg;
        cfg.reservationWindow = rw;
        runPolicy("reactive RW" + std::to_string(rw), cfg, [] {
            return std::make_unique<core::ReactivePolicy>();
        });
    }

    // ML scaling, if a trained model is available on disk.
    ml::RidgeRegression model;
    std::ifstream in("pearl_ml_rw500.model");
    if (in && model.load(in)) {
        core::PearlConfig cfg;
        cfg.reservationWindow = 500;
        // The model outlives the (synchronous) run, so capturing a
        // pointer into the factory is safe here.
        runPolicy("ML RW500 (cached model)", cfg, [&model] {
            return std::make_unique<ml::MlPowerPolicy>(&model);
        });
    } else {
        std::cout << "(no pearl_ml_rw500.model in the working directory;"
                     " run bench_fig6_throughput or the ml_workflow "
                     "example to train one)\n\n";
    }

    t.print(std::cout);
    return 0;
}
