file(REMOVE_RECURSE
  "CMakeFiles/pearl_photonic.dir/loss_budget.cpp.o"
  "CMakeFiles/pearl_photonic.dir/loss_budget.cpp.o.d"
  "CMakeFiles/pearl_photonic.dir/power_model.cpp.o"
  "CMakeFiles/pearl_photonic.dir/power_model.cpp.o.d"
  "libpearl_photonic.a"
  "libpearl_photonic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pearl_photonic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
