# Empty compiler generated dependencies file for pearl_photonic.
# This may be replaced when dependencies are built.
