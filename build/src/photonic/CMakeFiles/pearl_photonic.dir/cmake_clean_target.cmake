file(REMOVE_RECURSE
  "libpearl_photonic.a"
)
