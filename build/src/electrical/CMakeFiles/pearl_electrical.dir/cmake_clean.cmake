file(REMOVE_RECURSE
  "CMakeFiles/pearl_electrical.dir/cmesh.cpp.o"
  "CMakeFiles/pearl_electrical.dir/cmesh.cpp.o.d"
  "libpearl_electrical.a"
  "libpearl_electrical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pearl_electrical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
