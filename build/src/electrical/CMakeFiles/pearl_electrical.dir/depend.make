# Empty dependencies file for pearl_electrical.
# This may be replaced when dependencies are built.
