file(REMOVE_RECURSE
  "libpearl_electrical.a"
)
