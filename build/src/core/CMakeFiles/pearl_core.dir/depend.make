# Empty dependencies file for pearl_core.
# This may be replaced when dependencies are built.
