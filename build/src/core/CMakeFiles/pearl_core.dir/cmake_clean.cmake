file(REMOVE_RECURSE
  "CMakeFiles/pearl_core.dir/mwsr_network.cpp.o"
  "CMakeFiles/pearl_core.dir/mwsr_network.cpp.o.d"
  "CMakeFiles/pearl_core.dir/network.cpp.o"
  "CMakeFiles/pearl_core.dir/network.cpp.o.d"
  "CMakeFiles/pearl_core.dir/router.cpp.o"
  "CMakeFiles/pearl_core.dir/router.cpp.o.d"
  "CMakeFiles/pearl_core.dir/system.cpp.o"
  "CMakeFiles/pearl_core.dir/system.cpp.o.d"
  "libpearl_core.a"
  "libpearl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pearl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
