file(REMOVE_RECURSE
  "libpearl_core.a"
)
