file(REMOVE_RECURSE
  "CMakeFiles/pearl_cache.dir/cluster.cpp.o"
  "CMakeFiles/pearl_cache.dir/cluster.cpp.o.d"
  "CMakeFiles/pearl_cache.dir/l3.cpp.o"
  "CMakeFiles/pearl_cache.dir/l3.cpp.o.d"
  "libpearl_cache.a"
  "libpearl_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pearl_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
