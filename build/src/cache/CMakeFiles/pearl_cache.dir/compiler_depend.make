# Empty compiler generated dependencies file for pearl_cache.
# This may be replaced when dependencies are built.
