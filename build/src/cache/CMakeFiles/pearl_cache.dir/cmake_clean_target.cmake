file(REMOVE_RECURSE
  "libpearl_cache.a"
)
