# Empty dependencies file for pearl_metrics.
# This may be replaced when dependencies are built.
