file(REMOVE_RECURSE
  "CMakeFiles/pearl_metrics.dir/experiment.cpp.o"
  "CMakeFiles/pearl_metrics.dir/experiment.cpp.o.d"
  "libpearl_metrics.a"
  "libpearl_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pearl_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
