file(REMOVE_RECURSE
  "libpearl_metrics.a"
)
