# Empty dependencies file for pearl_traffic.
# This may be replaced when dependencies are built.
