
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traffic/suite.cpp" "src/traffic/CMakeFiles/pearl_traffic.dir/suite.cpp.o" "gcc" "src/traffic/CMakeFiles/pearl_traffic.dir/suite.cpp.o.d"
  "/root/repo/src/traffic/synthetic.cpp" "src/traffic/CMakeFiles/pearl_traffic.dir/synthetic.cpp.o" "gcc" "src/traffic/CMakeFiles/pearl_traffic.dir/synthetic.cpp.o.d"
  "/root/repo/src/traffic/trace.cpp" "src/traffic/CMakeFiles/pearl_traffic.dir/trace.cpp.o" "gcc" "src/traffic/CMakeFiles/pearl_traffic.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
