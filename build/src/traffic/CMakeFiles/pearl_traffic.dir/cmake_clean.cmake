file(REMOVE_RECURSE
  "CMakeFiles/pearl_traffic.dir/suite.cpp.o"
  "CMakeFiles/pearl_traffic.dir/suite.cpp.o.d"
  "CMakeFiles/pearl_traffic.dir/synthetic.cpp.o"
  "CMakeFiles/pearl_traffic.dir/synthetic.cpp.o.d"
  "CMakeFiles/pearl_traffic.dir/trace.cpp.o"
  "CMakeFiles/pearl_traffic.dir/trace.cpp.o.d"
  "libpearl_traffic.a"
  "libpearl_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pearl_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
