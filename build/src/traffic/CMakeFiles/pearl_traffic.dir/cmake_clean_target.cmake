file(REMOVE_RECURSE
  "libpearl_traffic.a"
)
