# Empty dependencies file for pearl_ml.
# This may be replaced when dependencies are built.
