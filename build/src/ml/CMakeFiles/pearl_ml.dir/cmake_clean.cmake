file(REMOVE_RECURSE
  "CMakeFiles/pearl_ml.dir/features.cpp.o"
  "CMakeFiles/pearl_ml.dir/features.cpp.o.d"
  "CMakeFiles/pearl_ml.dir/matrix.cpp.o"
  "CMakeFiles/pearl_ml.dir/matrix.cpp.o.d"
  "CMakeFiles/pearl_ml.dir/online_ridge.cpp.o"
  "CMakeFiles/pearl_ml.dir/online_ridge.cpp.o.d"
  "CMakeFiles/pearl_ml.dir/pipeline.cpp.o"
  "CMakeFiles/pearl_ml.dir/pipeline.cpp.o.d"
  "CMakeFiles/pearl_ml.dir/ridge.cpp.o"
  "CMakeFiles/pearl_ml.dir/ridge.cpp.o.d"
  "libpearl_ml.a"
  "libpearl_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pearl_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
