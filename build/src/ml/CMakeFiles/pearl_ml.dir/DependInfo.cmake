
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/features.cpp" "src/ml/CMakeFiles/pearl_ml.dir/features.cpp.o" "gcc" "src/ml/CMakeFiles/pearl_ml.dir/features.cpp.o.d"
  "/root/repo/src/ml/matrix.cpp" "src/ml/CMakeFiles/pearl_ml.dir/matrix.cpp.o" "gcc" "src/ml/CMakeFiles/pearl_ml.dir/matrix.cpp.o.d"
  "/root/repo/src/ml/online_ridge.cpp" "src/ml/CMakeFiles/pearl_ml.dir/online_ridge.cpp.o" "gcc" "src/ml/CMakeFiles/pearl_ml.dir/online_ridge.cpp.o.d"
  "/root/repo/src/ml/pipeline.cpp" "src/ml/CMakeFiles/pearl_ml.dir/pipeline.cpp.o" "gcc" "src/ml/CMakeFiles/pearl_ml.dir/pipeline.cpp.o.d"
  "/root/repo/src/ml/ridge.cpp" "src/ml/CMakeFiles/pearl_ml.dir/ridge.cpp.o" "gcc" "src/ml/CMakeFiles/pearl_ml.dir/ridge.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pearl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/photonic/CMakeFiles/pearl_photonic.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/pearl_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/pearl_traffic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
