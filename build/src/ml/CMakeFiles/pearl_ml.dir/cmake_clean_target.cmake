file(REMOVE_RECURSE
  "libpearl_ml.a"
)
