# Empty dependencies file for test_cmesh.
# This may be replaced when dependencies are built.
