file(REMOVE_RECURSE
  "CMakeFiles/test_cmesh.dir/test_cmesh.cpp.o"
  "CMakeFiles/test_cmesh.dir/test_cmesh.cpp.o.d"
  "test_cmesh"
  "test_cmesh.pdb"
  "test_cmesh[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cmesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
