# Empty compiler generated dependencies file for test_ridge.
# This may be replaced when dependencies are built.
