file(REMOVE_RECURSE
  "CMakeFiles/test_ridge.dir/test_ridge.cpp.o"
  "CMakeFiles/test_ridge.dir/test_ridge.cpp.o.d"
  "test_ridge"
  "test_ridge.pdb"
  "test_ridge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
