file(REMOVE_RECURSE
  "CMakeFiles/test_table2_area.dir/test_table2_area.cpp.o"
  "CMakeFiles/test_table2_area.dir/test_table2_area.cpp.o.d"
  "test_table2_area"
  "test_table2_area.pdb"
  "test_table2_area[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_table2_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
