# Empty compiler generated dependencies file for test_table2_area.
# This may be replaced when dependencies are built.
