file(REMOVE_RECURSE
  "CMakeFiles/test_pearl_network.dir/test_pearl_network.cpp.o"
  "CMakeFiles/test_pearl_network.dir/test_pearl_network.cpp.o.d"
  "test_pearl_network"
  "test_pearl_network.pdb"
  "test_pearl_network[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pearl_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
