# Empty compiler generated dependencies file for test_power_policy.
# This may be replaced when dependencies are built.
