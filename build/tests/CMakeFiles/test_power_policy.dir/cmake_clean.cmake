file(REMOVE_RECURSE
  "CMakeFiles/test_power_policy.dir/test_power_policy.cpp.o"
  "CMakeFiles/test_power_policy.dir/test_power_policy.cpp.o.d"
  "test_power_policy"
  "test_power_policy.pdb"
  "test_power_policy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_power_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
