# Empty dependencies file for test_online_ridge.
# This may be replaced when dependencies are built.
