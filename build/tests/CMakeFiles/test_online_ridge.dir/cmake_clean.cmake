file(REMOVE_RECURSE
  "CMakeFiles/test_online_ridge.dir/test_online_ridge.cpp.o"
  "CMakeFiles/test_online_ridge.dir/test_online_ridge.cpp.o.d"
  "test_online_ridge"
  "test_online_ridge.pdb"
  "test_online_ridge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_online_ridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
