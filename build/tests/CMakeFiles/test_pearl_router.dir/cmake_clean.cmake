file(REMOVE_RECURSE
  "CMakeFiles/test_pearl_router.dir/test_pearl_router.cpp.o"
  "CMakeFiles/test_pearl_router.dir/test_pearl_router.cpp.o.d"
  "test_pearl_router"
  "test_pearl_router.pdb"
  "test_pearl_router[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pearl_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
