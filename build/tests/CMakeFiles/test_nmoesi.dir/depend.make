# Empty dependencies file for test_nmoesi.
# This may be replaced when dependencies are built.
