file(REMOVE_RECURSE
  "CMakeFiles/test_nmoesi.dir/test_nmoesi.cpp.o"
  "CMakeFiles/test_nmoesi.dir/test_nmoesi.cpp.o.d"
  "test_nmoesi"
  "test_nmoesi.pdb"
  "test_nmoesi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nmoesi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
