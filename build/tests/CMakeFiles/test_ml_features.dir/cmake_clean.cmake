file(REMOVE_RECURSE
  "CMakeFiles/test_ml_features.dir/test_ml_features.cpp.o"
  "CMakeFiles/test_ml_features.dir/test_ml_features.cpp.o.d"
  "test_ml_features"
  "test_ml_features.pdb"
  "test_ml_features[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
