file(REMOVE_RECURSE
  "CMakeFiles/test_mwsr.dir/test_mwsr.cpp.o"
  "CMakeFiles/test_mwsr.dir/test_mwsr.cpp.o.d"
  "test_mwsr"
  "test_mwsr.pdb"
  "test_mwsr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mwsr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
