# Empty dependencies file for test_mwsr.
# This may be replaced when dependencies are built.
