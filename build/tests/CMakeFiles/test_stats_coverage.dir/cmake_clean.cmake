file(REMOVE_RECURSE
  "CMakeFiles/test_stats_coverage.dir/test_stats_coverage.cpp.o"
  "CMakeFiles/test_stats_coverage.dir/test_stats_coverage.cpp.o.d"
  "test_stats_coverage"
  "test_stats_coverage.pdb"
  "test_stats_coverage[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
