# Empty compiler generated dependencies file for test_stats_coverage.
# This may be replaced when dependencies are built.
