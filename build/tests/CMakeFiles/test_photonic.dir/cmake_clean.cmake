file(REMOVE_RECURSE
  "CMakeFiles/test_photonic.dir/test_photonic.cpp.o"
  "CMakeFiles/test_photonic.dir/test_photonic.cpp.o.d"
  "test_photonic"
  "test_photonic.pdb"
  "test_photonic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_photonic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
