# Empty dependencies file for test_photonic.
# This may be replaced when dependencies are built.
