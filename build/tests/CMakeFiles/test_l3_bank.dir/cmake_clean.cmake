file(REMOVE_RECURSE
  "CMakeFiles/test_l3_bank.dir/test_l3_bank.cpp.o"
  "CMakeFiles/test_l3_bank.dir/test_l3_bank.cpp.o.d"
  "test_l3_bank"
  "test_l3_bank.pdb"
  "test_l3_bank[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_l3_bank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
