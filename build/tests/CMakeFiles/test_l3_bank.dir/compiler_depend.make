# Empty compiler generated dependencies file for test_l3_bank.
# This may be replaced when dependencies are built.
