file(REMOVE_RECURSE
  "CMakeFiles/test_dba.dir/test_dba.cpp.o"
  "CMakeFiles/test_dba.dir/test_dba.cpp.o.d"
  "test_dba"
  "test_dba.pdb"
  "test_dba[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dba.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
