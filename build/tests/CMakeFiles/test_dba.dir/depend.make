# Empty dependencies file for test_dba.
# This may be replaced when dependencies are built.
