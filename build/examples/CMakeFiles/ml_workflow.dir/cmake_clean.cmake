file(REMOVE_RECURSE
  "CMakeFiles/ml_workflow.dir/ml_workflow.cpp.o"
  "CMakeFiles/ml_workflow.dir/ml_workflow.cpp.o.d"
  "ml_workflow"
  "ml_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
