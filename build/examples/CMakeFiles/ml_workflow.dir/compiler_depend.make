# Empty compiler generated dependencies file for ml_workflow.
# This may be replaced when dependencies are built.
