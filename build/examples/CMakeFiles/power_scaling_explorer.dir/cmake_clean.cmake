file(REMOVE_RECURSE
  "CMakeFiles/power_scaling_explorer.dir/power_scaling_explorer.cpp.o"
  "CMakeFiles/power_scaling_explorer.dir/power_scaling_explorer.cpp.o.d"
  "power_scaling_explorer"
  "power_scaling_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_scaling_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
