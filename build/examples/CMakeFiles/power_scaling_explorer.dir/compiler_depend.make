# Empty compiler generated dependencies file for power_scaling_explorer.
# This may be replaced when dependencies are built.
