# Empty compiler generated dependencies file for gpu_contention.
# This may be replaced when dependencies are built.
