file(REMOVE_RECURSE
  "CMakeFiles/gpu_contention.dir/gpu_contention.cpp.o"
  "CMakeFiles/gpu_contention.dir/gpu_contention.cpp.o.d"
  "gpu_contention"
  "gpu_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
