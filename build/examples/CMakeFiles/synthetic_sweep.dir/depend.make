# Empty dependencies file for synthetic_sweep.
# This may be replaced when dependencies are built.
