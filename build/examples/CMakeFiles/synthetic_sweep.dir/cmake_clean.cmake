file(REMOVE_RECURSE
  "CMakeFiles/synthetic_sweep.dir/synthetic_sweep.cpp.o"
  "CMakeFiles/synthetic_sweep.dir/synthetic_sweep.cpp.o.d"
  "synthetic_sweep"
  "synthetic_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthetic_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
