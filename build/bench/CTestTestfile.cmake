# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_table1_config_smoke "/root/repo/build/bench/bench_table1_config")
set_tests_properties(bench_table1_config_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;44;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_table2_area_smoke "/root/repo/build/bench/bench_table2_area")
set_tests_properties(bench_table2_area_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;44;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_table3_features_smoke "/root/repo/build/bench/bench_table3_features")
set_tests_properties(bench_table3_features_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;44;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_table4_benchmarks_smoke "/root/repo/build/bench/bench_table4_benchmarks")
set_tests_properties(bench_table4_benchmarks_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;44;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_table5_optics_smoke "/root/repo/build/bench/bench_table5_optics")
set_tests_properties(bench_table5_optics_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;44;add_test;/root/repo/bench/CMakeLists.txt;0;")
