file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_energy_per_bit.dir/bench_fig5_energy_per_bit.cpp.o"
  "CMakeFiles/bench_fig5_energy_per_bit.dir/bench_fig5_energy_per_bit.cpp.o.d"
  "bench_fig5_energy_per_bit"
  "bench_fig5_energy_per_bit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_energy_per_bit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
