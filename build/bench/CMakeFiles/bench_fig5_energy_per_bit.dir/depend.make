# Empty dependencies file for bench_fig5_energy_per_bit.
# This may be replaced when dependencies are built.
