# Empty compiler generated dependencies file for bench_ablation_thermal.
# This may be replaced when dependencies are built.
