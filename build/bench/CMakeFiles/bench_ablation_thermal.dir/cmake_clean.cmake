file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_thermal.dir/bench_ablation_thermal.cpp.o"
  "CMakeFiles/bench_ablation_thermal.dir/bench_ablation_thermal.cpp.o.d"
  "bench_ablation_thermal"
  "bench_ablation_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
