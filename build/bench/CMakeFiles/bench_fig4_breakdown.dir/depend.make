# Empty dependencies file for bench_fig4_breakdown.
# This may be replaced when dependencies are built.
