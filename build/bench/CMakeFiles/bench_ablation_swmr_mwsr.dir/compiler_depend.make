# Empty compiler generated dependencies file for bench_ablation_swmr_mwsr.
# This may be replaced when dependencies are built.
