file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_swmr_mwsr.dir/bench_ablation_swmr_mwsr.cpp.o"
  "CMakeFiles/bench_ablation_swmr_mwsr.dir/bench_ablation_swmr_mwsr.cpp.o.d"
  "bench_ablation_swmr_mwsr"
  "bench_ablation_swmr_mwsr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_swmr_mwsr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
