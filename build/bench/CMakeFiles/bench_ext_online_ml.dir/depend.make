# Empty dependencies file for bench_ext_online_ml.
# This may be replaced when dependencies are built.
