file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_online_ml.dir/bench_ext_online_ml.cpp.o"
  "CMakeFiles/bench_ext_online_ml.dir/bench_ext_online_ml.cpp.o.d"
  "bench_ext_online_ml"
  "bench_ext_online_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_online_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
