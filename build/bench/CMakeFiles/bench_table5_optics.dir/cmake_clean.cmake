file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_optics.dir/bench_table5_optics.cpp.o"
  "CMakeFiles/bench_table5_optics.dir/bench_table5_optics.cpp.o.d"
  "bench_table5_optics"
  "bench_table5_optics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_optics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
