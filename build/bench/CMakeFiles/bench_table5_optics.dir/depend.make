# Empty dependencies file for bench_table5_optics.
# This may be replaced when dependencies are built.
