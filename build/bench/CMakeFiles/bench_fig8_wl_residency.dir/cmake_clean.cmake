file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_wl_residency.dir/bench_fig8_wl_residency.cpp.o"
  "CMakeFiles/bench_fig8_wl_residency.dir/bench_fig8_wl_residency.cpp.o.d"
  "bench_fig8_wl_residency"
  "bench_fig8_wl_residency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_wl_residency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
