# Empty dependencies file for bench_fig8_wl_residency.
# This may be replaced when dependencies are built.
