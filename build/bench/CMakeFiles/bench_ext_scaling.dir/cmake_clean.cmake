file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_scaling.dir/bench_ext_scaling.cpp.o"
  "CMakeFiles/bench_ext_scaling.dir/bench_ext_scaling.cpp.o.d"
  "bench_ext_scaling"
  "bench_ext_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
