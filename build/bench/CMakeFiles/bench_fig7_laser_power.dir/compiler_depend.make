# Empty compiler generated dependencies file for bench_fig7_laser_power.
# This may be replaced when dependencies are built.
