file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_laser_power.dir/bench_fig7_laser_power.cpp.o"
  "CMakeFiles/bench_fig7_laser_power.dir/bench_fig7_laser_power.cpp.o.d"
  "bench_fig7_laser_power"
  "bench_fig7_laser_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_laser_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
