file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_rw500_baselines.dir/bench_fig9_rw500_baselines.cpp.o"
  "CMakeFiles/bench_fig9_rw500_baselines.dir/bench_fig9_rw500_baselines.cpp.o.d"
  "bench_fig9_rw500_baselines"
  "bench_fig9_rw500_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_rw500_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
