# Empty compiler generated dependencies file for bench_fig9_rw500_baselines.
# This may be replaced when dependencies are built.
