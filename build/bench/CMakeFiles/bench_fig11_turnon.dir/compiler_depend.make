# Empty compiler generated dependencies file for bench_fig11_turnon.
# This may be replaced when dependencies are built.
