file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_turnon.dir/bench_fig11_turnon.cpp.o"
  "CMakeFiles/bench_fig11_turnon.dir/bench_fig11_turnon.cpp.o.d"
  "bench_fig11_turnon"
  "bench_fig11_turnon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_turnon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
