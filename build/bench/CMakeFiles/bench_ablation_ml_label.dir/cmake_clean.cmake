file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ml_label.dir/bench_ablation_ml_label.cpp.o"
  "CMakeFiles/bench_ablation_ml_label.dir/bench_ablation_ml_label.cpp.o.d"
  "bench_ablation_ml_label"
  "bench_ablation_ml_label.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ml_label.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
