# Empty compiler generated dependencies file for bench_ablation_ml_label.
# This may be replaced when dependencies are built.
