file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_benchmarks.dir/bench_table4_benchmarks.cpp.o"
  "CMakeFiles/bench_table4_benchmarks.dir/bench_table4_benchmarks.cpp.o.d"
  "bench_table4_benchmarks"
  "bench_table4_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
