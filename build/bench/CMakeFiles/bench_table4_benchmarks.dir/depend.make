# Empty dependencies file for bench_table4_benchmarks.
# This may be replaced when dependencies are built.
