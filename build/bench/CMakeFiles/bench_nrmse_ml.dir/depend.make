# Empty dependencies file for bench_nrmse_ml.
# This may be replaced when dependencies are built.
