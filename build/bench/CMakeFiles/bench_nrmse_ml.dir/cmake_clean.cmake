file(REMOVE_RECURSE
  "CMakeFiles/bench_nrmse_ml.dir/bench_nrmse_ml.cpp.o"
  "CMakeFiles/bench_nrmse_ml.dir/bench_nrmse_ml.cpp.o.d"
  "bench_nrmse_ml"
  "bench_nrmse_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nrmse_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
