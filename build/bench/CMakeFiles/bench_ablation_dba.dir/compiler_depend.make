# Empty compiler generated dependencies file for bench_ablation_dba.
# This may be replaced when dependencies are built.
