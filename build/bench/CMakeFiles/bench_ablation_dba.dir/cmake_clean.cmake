file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dba.dir/bench_ablation_dba.cpp.o"
  "CMakeFiles/bench_ablation_dba.dir/bench_ablation_dba.cpp.o.d"
  "bench_ablation_dba"
  "bench_ablation_dba.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dba.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
